// Package leased serves the lease manager over the network: an HTTP/JSON
// daemon through which remote clients acquire, renew and release leases on
// contended resources, with the paper's utilitarian defaulter detection
// (FAB/LHB/LUB classification, deferral, adaptive terms, reputation)
// running unmodified on a wall clock.
//
// Architecture:
//
//	HTTP handlers ──► runtime.Wall.Do ──► lease.Manager (unmodified)
//	                        │                    │ Suppress/TermStats
//	                        │                    ▼
//	                        └──────────► resources (hooks.Controller)
//
// The manager is the exact single-threaded mechanism the simulator runs;
// the Wall clock's Do is the only door to it, so HTTP concurrency is
// serialized at the clock, term-check events interleave with requests in
// timestamp order, and the whole lease table keeps its simulation-grade
// invariants under load. The resources table plays the role the Android
// services play in the simulator: it is the lease proxy that tracks
// held/active time server-side and folds in the utility signals clients
// report with their renewals.
package leased

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/android/hooks"
	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/lease"
	"repro/internal/power"
	"repro/internal/runtime"
	"repro/internal/simclock"
)

// Options configures the daemon.
type Options struct {
	// Lease is the manager policy; zero fields take paper defaults. For a
	// live daemon the 5 s base term is usually right; tests and load
	// experiments shrink it.
	Lease lease.Config
	// MaxInflight bounds concurrently-admitted requests; excess requests
	// are rejected with 503 rather than queued (default 256).
	MaxInflight int
	// RequestTimeout bounds one request's total handling time (default 5 s).
	RequestTimeout time.Duration

	// SnapshotEvery is how many journal records accumulate before a
	// checkpoint folds them into the snapshot (default 1024). Only
	// meaningful for daemons stood up with Open.
	SnapshotEvery int
	// Fsync makes every journal append durable against power loss, not
	// just process crash. Off by default: the chaos tests SIGKILL the
	// process, and the page cache survives that.
	Fsync bool
	// DedupWindow bounds the idempotency cache: how many recent
	// request-IDs the daemon remembers (default 4096).
	DedupWindow int

	// Faults, when set, threads scripted chaos through the daemon: sites
	// http.error, http.delay, http.drop and wall.delay (see package
	// faults). Nil means no injection and zero overhead on hot paths.
	Faults *faults.Injector
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 5 * time.Second
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 1024
	}
	if o.DedupWindow <= 0 {
		o.DedupWindow = 4096
	}
	return o
}

// Server is the lease daemon: the wall clock, the manager, the server-side
// resource table, and the HTTP surface. Create with NewServer; all mutable
// state below is touched only inside clock.Do.
type Server struct {
	opts  Options
	clock *runtime.Wall
	mgr   *lease.Manager
	res   *resources
	apps  *appStats

	clients    map[string]power.UID
	clientName map[power.UID]string
	nextUID    power.UID

	byKey   map[clientKey]*robj // one kernel object per (uid, kind)
	byLease map[uint64]*robj

	// Durability (nil store = in-memory daemon, the NewServer path).
	store    *durable.Store
	dedup    *dedupCache
	recovery RecoveryInfo

	faults *faults.Injector

	metrics  *metrics
	inflight chan struct{}
	started  time.Time
}

type clientKey struct {
	uid  power.UID
	kind hooks.Kind
}

// NewServer assembles an in-memory daemon (no journal; state dies with the
// process). Call Close when done to stop the clock. For a crash-safe daemon
// use Open.
func NewServer(opts Options) *Server {
	return newServer(opts, runtime.NewWall())
}

// newServer assembles a daemon around the given clock, which Open passes in
// unstarted so recovery can replay before real time begins.
func newServer(opts Options, clock *runtime.Wall) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:       opts,
		clock:      clock,
		apps:       newAppStats(),
		clients:    make(map[string]power.UID),
		clientName: make(map[power.UID]string),
		nextUID:    1,
		byKey:      make(map[clientKey]*robj),
		byLease:    make(map[uint64]*robj),
		dedup:      newDedupCache(opts.DedupWindow),
		faults:     opts.Faults,
		metrics:    newMetrics(),
		inflight:   make(chan struct{}, opts.MaxInflight),
		started:    time.Now(),
	}
	s.res = &resources{clock: s.clock, objs: make(map[uint64]*robj)}
	s.mgr = lease.NewManager(s.clock, s.apps, opts.Lease)
	if s.faults != nil {
		site := s.faults.Site("wall.delay")
		s.clock.SetLoopDelay(func() time.Duration {
			if site.Fire() {
				return site.Delay()
			}
			return 0
		})
	}
	return s
}

// Close stops the wall clock's timer loop and the journal. In-flight Do
// sections finish first; call after the HTTP server has shut down.
func (s *Server) Close() {
	s.clock.Stop()
	if s.store != nil {
		s.store.Close()
	}
}

// do runs fn serialized on the clock, with due term checks fired first.
func (s *Server) do(fn func()) { s.clock.Do(fn) }

// uidOf maps a client name to its stable UID, assigning on first sight.
// Callers hold the clock.
func (s *Server) uidOf(client string) power.UID {
	if uid, ok := s.clients[client]; ok {
		return uid
	}
	uid := s.nextUID
	s.nextUID++
	s.clients[client] = uid
	s.clientName[uid] = client
	return uid
}

// acquire creates or re-acquires the (client, kind) lease. The applied-
// acquire counter is the client's double-apply detector: a retried request
// that dedups does not reach here, so the counter tracks logical intents,
// not wire attempts. Callers hold the clock.
func (s *Server) acquire(client string, kind hooks.Kind) *robj {
	uid := s.uidOf(client)
	key := clientKey{uid, kind}
	o := s.byKey[key]
	if o == nil || o.destroyed {
		o = s.res.create(uid, kind, client)
		s.byKey[key] = o
		o.held = true
		o.acquires = 1
		o.leaseID = s.mgr.Create(s.res.hookObject(o))
		s.byLease[o.leaseID] = o
		return o
	}
	o.acquires++
	if !o.held {
		s.res.settle(o)
		o.held = true
	}
	s.mgr.ObjectReacquired(s.res.hookObject(o))
	return o
}

// renew folds the client's usage report into the lease's current term and
// re-asserts that the resource is held; an inactive lease is renewed back
// to Active, a deferred one stays suppressed until its τ elapses (the
// paper's "pretend to succeed"). Callers hold the clock.
func (s *Server) renew(o *robj, rep usageReport) {
	s.foldReport(o, rep)
	if !o.held {
		s.res.settle(o)
		o.held = true
	}
	s.mgr.ObjectReacquired(s.res.hookObject(o))
}

// release drops the hold; the lease itself transitions at its next term
// boundary (paper §3.2). Releasing an unheld lease is a no-op. Callers
// hold the clock.
func (s *Server) release(o *robj) {
	if !o.held || o.destroyed {
		return
	}
	s.res.settle(o)
	o.held = false
	s.mgr.ObjectReleased(s.res.hookObject(o))
}

// destroy deallocates the kernel object: the lease dies and the (client,
// kind) slot is freed for a fresh lease. Callers hold the clock.
func (s *Server) destroy(o *robj) {
	if o.destroyed {
		return
	}
	s.res.settle(o)
	o.destroyed = true
	o.held = false
	s.mgr.ObjectDestroyed(s.res.hookObject(o))
	delete(s.byKey, clientKey{o.uid, o.kind})
	delete(s.byLease, o.leaseID)
	delete(s.res.objs, o.id)
}

// applyRecord executes one external mutation at the clock's current frozen
// instant. It is the single mutation codepath — live requests run it inside
// applyOp (which journals it first), and recovery runs it during replay — so
// a replayed history reproduces the live history exactly. Callers hold the
// clock.
func (s *Server) applyRecord(rec *opRecord) (status int, resp leaseResponse, errMsg string) {
	switch rec.Op {
	case "acquire":
		kind, err := kindFromName(rec.Kind)
		if err != nil {
			return http.StatusBadRequest, resp, err.Error()
		}
		return http.StatusOK, s.leaseView(s.acquire(rec.Client, kind), false), ""
	case "renew":
		o := s.byLease[rec.LeaseID]
		if o == nil {
			return http.StatusNotFound, resp, "unknown or dead lease"
		}
		var rep usageReport
		if rec.Report != nil {
			rep = *rec.Report
		}
		s.renew(o, rep)
		return http.StatusOK, s.leaseView(o, false), ""
	case "release":
		o := s.byLease[rec.LeaseID]
		if o == nil {
			return http.StatusNotFound, resp, "unknown or dead lease"
		}
		if rec.Destroy {
			s.destroy(o)
		} else {
			s.release(o)
		}
		return http.StatusOK, s.leaseView(o, false), ""
	case "mark":
		// A no-op record: tests journal it to pin an exact replay stop
		// point; replaying it does nothing.
		return http.StatusOK, resp, ""
	}
	return http.StatusBadRequest, resp, "unknown op " + rec.Op
}

// foldReport adds a usage report to the object's pending term stats and the
// holder's app-level counters. Callers hold the clock.
func (s *Server) foldReport(o *robj, rep usageReport) {
	o.used += rep.used()
	o.reqTime += rep.request()
	o.failedReqTime += rep.failedRequest()
	if rep.DataPoints > 0 {
		o.dataPoints += rep.DataPoints
	}
	if rep.DistanceM > 0 {
		o.distanceM += rep.DistanceM
	}
	s.apps.add(o.uid, rep)
}

// --- the server-side lease proxy (hooks.Controller) ---

// robj is one kernel object: the server-side record of a (client, kind)
// resource instance, with lazily-settled hold/active accumulators (the same
// scheme powermgr uses) plus the client-reported utility extras.
type robj struct {
	id      uint64
	uid     power.UID
	kind    hooks.Kind
	client  string
	leaseID uint64

	held       bool
	suppressed bool
	destroyed  bool

	lastSettle simclock.Time
	accHeld    time.Duration
	accActive  time.Duration

	// client-reported, reset on each TermStats pull
	used          time.Duration
	reqTime       time.Duration
	failedReqTime time.Duration
	dataPoints    int
	distanceM     float64

	// acquires counts applied acquire operations (initial create plus
	// re-acquires). Exposed to clients in every lease response so a
	// retrying client can detect a double-applied acquire: after a retry
	// storm, the server's count must still equal the client's count of
	// distinct acquire intents.
	acquires int64
}

// resources implements hooks.Controller over the live object table. All
// methods run with the clock held (the manager only calls them from inside
// term-check events or server operations).
type resources struct {
	clock  runtime.Clock
	objs   map[uint64]*robj
	nextID uint64
}

func (r *resources) create(uid power.UID, kind hooks.Kind, client string) *robj {
	r.nextID++
	o := &robj{id: r.nextID, uid: uid, kind: kind, client: client, lastSettle: r.clock.Now()}
	r.objs[o.id] = o
	return o
}

func (r *resources) hookObject(o *robj) hooks.Object {
	return hooks.Object{ID: o.id, UID: o.uid, Kind: o.kind, Control: r}
}

// settle folds elapsed wall time into o's hold/active accumulators.
func (r *resources) settle(o *robj) {
	now := r.clock.Now()
	if dt := now - o.lastSettle; dt > 0 {
		if o.held {
			o.accHeld += dt
			if !o.suppressed {
				o.accActive += dt
			}
		}
		o.lastSettle = now
	}
}

// Suppress implements hooks.Controller: the resource is revoked while the
// client-side lease "pretends to succeed".
func (r *resources) Suppress(id uint64) {
	o := r.objs[id]
	if o == nil || o.suppressed {
		return
	}
	r.settle(o)
	o.suppressed = true
}

// Unsuppress implements hooks.Controller.
func (r *resources) Unsuppress(id uint64) {
	o := r.objs[id]
	if o == nil || !o.suppressed {
		return
	}
	r.settle(o)
	o.suppressed = false
}

// TermStats implements hooks.Controller: returns and resets the counters
// accumulated since the previous pull.
func (r *resources) TermStats(id uint64) hooks.TermStats {
	o := r.objs[id]
	if o == nil {
		return hooks.TermStats{}
	}
	r.settle(o)
	ts := hooks.TermStats{
		Held:              o.accHeld,
		Active:            o.accActive,
		Used:              o.used,
		RequestTime:       o.reqTime,
		FailedRequestTime: o.failedReqTime,
		DataPoints:        o.dataPoints,
		DistanceM:         o.distanceM,
	}
	o.accHeld, o.accActive = 0, 0
	o.used, o.reqTime, o.failedReqTime = 0, 0, 0
	o.dataPoints, o.distanceM = 0, 0
	return ts
}

// ServiceName implements hooks.Controller.
func (r *resources) ServiceName() string { return "leased" }

var _ hooks.Controller = (*resources)(nil)

// --- app-level utility signals (lease.AppStats) ---

// appStats accumulates the cumulative per-client counters the manager
// differences per term: CPU time, exceptions, UI updates, interactions.
// Clients self-report them in renewal payloads; in the simulator the app
// framework plays this role.
type appStats struct {
	cpu   map[power.UID]time.Duration
	exc   map[power.UID]int
	ui    map[power.UID]int
	inter map[power.UID]int
}

func newAppStats() *appStats {
	return &appStats{
		cpu:   make(map[power.UID]time.Duration),
		exc:   make(map[power.UID]int),
		ui:    make(map[power.UID]int),
		inter: make(map[power.UID]int),
	}
}

func (a *appStats) add(uid power.UID, rep usageReport) {
	if d := rep.cpu(); d > 0 {
		a.cpu[uid] += d
	}
	if rep.Exceptions > 0 {
		a.exc[uid] += rep.Exceptions
	}
	if rep.UIUpdates > 0 {
		a.ui[uid] += rep.UIUpdates
	}
	if rep.Interactions > 0 {
		a.inter[uid] += rep.Interactions
	}
}

func (a *appStats) CPUTimeOf(uid power.UID) time.Duration { return a.cpu[uid] }
func (a *appStats) ExceptionsOf(uid power.UID) int        { return a.exc[uid] }
func (a *appStats) UIUpdatesOf(uid power.UID) int         { return a.ui[uid] }
func (a *appStats) InteractionsOf(uid power.UID) int      { return a.inter[uid] }

var _ lease.AppStats = (*appStats)(nil)

// kindFromName resolves a resource-kind name ("wakelock", "gps", ...).
func kindFromName(name string) (hooks.Kind, error) {
	for _, k := range hooks.Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown resource kind %q", name)
}
