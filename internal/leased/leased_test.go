package leased

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/lease"
)

// testOptions shrinks the policy so wall-clock terms elapse in tens of
// milliseconds: base term 40 ms, τ 80 ms, defer on the first bad term.
func testOptions() Options {
	return Options{
		Lease: lease.Config{
			Term:              40 * time.Millisecond,
			Tau:               80 * time.Millisecond,
			TauMax:            320 * time.Millisecond,
			MisbehaviorWindow: 1,
		},
	}
}

type rig struct {
	t   *testing.T
	s   *Server
	ts  *httptest.Server
	cli *http.Client
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return &rig{t: t, s: s, ts: ts, cli: ts.Client()}
}

// call performs one JSON request and decodes the response into out.
func (r *rig) call(method, path string, body any, out any) int {
	r.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			r.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, r.ts.URL+path, &buf)
	if err != nil {
		r.t.Fatal(err)
	}
	resp, err := r.cli.Do(req)
	if err != nil {
		r.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			r.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (r *rig) acquire(client, kind string) leaseResponse {
	r.t.Helper()
	var lr leaseResponse
	if code := r.call("POST", "/v1/leases", acquireRequest{Client: client, Kind: kind}, &lr); code != 200 {
		r.t.Fatalf("acquire: status %d", code)
	}
	return lr
}

func (r *rig) renew(id uint64, rep usageReport) leaseResponse {
	r.t.Helper()
	var lr leaseResponse
	if code := r.call("POST", fmt.Sprintf("/v1/leases/%d/renew", id), rep, &lr); code != 200 {
		r.t.Fatalf("renew: status %d", code)
	}
	return lr
}

// waitState polls (renewing with rep each beat) until the lease reports
// state want.
func (r *rig) waitState(id uint64, rep usageReport, want string, timeout time.Duration) leaseResponse {
	r.t.Helper()
	deadline := time.Now().Add(timeout)
	var last leaseResponse
	for time.Now().Before(deadline) {
		last = r.renew(id, rep)
		if last.State == want {
			return last
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.t.Fatalf("lease %d never reached %s (last state %s)", id, want, last.State)
	return last
}

func TestAcquireAssignsStableUIDPerClient(t *testing.T) {
	r := newRig(t, testOptions())
	a := r.acquire("alice", "wakelock")
	b := r.acquire("bob", "wakelock")
	a2 := r.acquire("alice", "gps")
	if a.UID == b.UID {
		t.Fatalf("distinct clients share uid %d", a.UID)
	}
	if a.UID != a2.UID {
		t.Fatalf("same client got two uids: %d, %d", a.UID, a2.UID)
	}
	if a.LeaseID == a2.LeaseID {
		t.Fatal("distinct kinds must have distinct leases")
	}
	// Re-acquiring the same (client, kind) returns the same lease.
	if again := r.acquire("alice", "wakelock"); again.LeaseID != a.LeaseID {
		t.Fatalf("re-acquire minted a new lease: %d -> %d", a.LeaseID, again.LeaseID)
	}
}

func TestAcquireValidation(t *testing.T) {
	r := newRig(t, testOptions())
	if code := r.call("POST", "/v1/leases", acquireRequest{Client: "", Kind: "wakelock"}, nil); code != 400 {
		t.Fatalf("empty client: status %d, want 400", code)
	}
	if code := r.call("POST", "/v1/leases", acquireRequest{Client: "x", Kind: "flux"}, nil); code != 400 {
		t.Fatalf("bad kind: status %d, want 400", code)
	}
	if code := r.call("GET", "/v1/leases/999", nil, nil); code != 404 {
		t.Fatalf("unknown lease: status %d, want 404", code)
	}
}

// TestSilentHolderIsDeferred is the Torch/Facebook pattern over the wire:
// acquire a wakelock, heartbeat with no usage, never release. The server
// must classify LHB and defer, then restore after τ.
func TestSilentHolderIsDeferred(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("leaker", "wakelock")
	got := r.waitState(lr.LeaseID, usageReport{}, "DEFERRED", 5*time.Second)
	if got.State != "DEFERRED" {
		t.Fatalf("state %s", got.State)
	}
	// The deferral must end: τ elapses and the lease re-activates.
	r.waitState(lr.LeaseID, usageReport{}, "ACTIVE", 5*time.Second)

	// The detection is on the books.
	snap := r.s.snapshot()
	if snap.Manager.Deferrals == 0 {
		t.Fatal("metrics report zero deferrals")
	}
	found := false
	for _, d := range snap.Defaulters {
		if d.Client == "leaker" && d.Deferrals > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("defaulters list %+v missing 'leaker'", snap.Defaulters)
	}
}

// TestFrequentAskerIsDeferred drives the BetterWeather pattern: a GPS
// lease whose reports are dominated by failed request time.
func TestFrequentAskerIsDeferred(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("asker", "gps")
	rep := usageReport{RequestMS: 20, FailedRequestMS: 19}
	r.waitState(lr.LeaseID, rep, "DEFERRED", 5*time.Second)
}

// TestBusyUselessClientIsDeferred drives the K-9 pattern: full CPU
// utilization, an exception storm, no visible utility → LUB.
func TestBusyUselessClientIsDeferred(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("k9ish", "wakelock")
	rep := usageReport{CPUMS: 8, Exceptions: 3}
	r.waitState(lr.LeaseID, rep, "DEFERRED", 5*time.Second)
}

// TestWellBehavedClientStaysNormal holds for well under half of each term
// with real reported work: the lease must never defer.
func TestWellBehavedClientStaysNormal(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("runkeeper", "wakelock")
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		got := r.renew(lr.LeaseID, usageReport{CPUMS: 4, UIUpdates: 1, Interactions: 1})
		if got.State == "DEFERRED" {
			t.Fatal("well-behaved client was deferred")
		}
		// Hold briefly, then release so the held fraction stays low.
		time.Sleep(3 * time.Millisecond)
		if code := r.call("DELETE", fmt.Sprintf("/v1/leases/%d", lr.LeaseID), nil, nil); code != 200 {
			t.Fatalf("release: status %d", code)
		}
		time.Sleep(12 * time.Millisecond)
	}
	snap := r.s.snapshot()
	for _, d := range snap.Defaulters {
		if d.Client == "runkeeper" {
			t.Fatalf("well-behaved client listed as defaulter: %+v", d)
		}
	}
}

func TestReleaseThenInactiveThenRenew(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("cycler", "wakelock")
	if code := r.call("DELETE", fmt.Sprintf("/v1/leases/%d", lr.LeaseID), nil, nil); code != 200 {
		t.Fatalf("release: status %d", code)
	}
	// At the end of the term the lease rests.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got leaseResponse
		r.call("GET", fmt.Sprintf("/v1/leases/%d", lr.LeaseID), nil, &got)
		if got.State == "INACTIVE" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never went INACTIVE (state %s)", got.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A renew re-activates it.
	if got := r.renew(lr.LeaseID, usageReport{}); got.State != "ACTIVE" {
		t.Fatalf("state after renew = %s, want ACTIVE", got.State)
	}
}

func TestDestroyKillsLease(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("mortal", "sensor")
	if code := r.call("DELETE", fmt.Sprintf("/v1/leases/%d?destroy=1", lr.LeaseID), nil, nil); code != 200 {
		t.Fatalf("destroy: status %d", code)
	}
	if code := r.call("GET", fmt.Sprintf("/v1/leases/%d", lr.LeaseID), nil, nil); code != 404 {
		t.Fatalf("get after destroy: status %d, want 404", code)
	}
	// A fresh acquire mints a new lease (new kernel object).
	if again := r.acquire("mortal", "sensor"); again.LeaseID == lr.LeaseID {
		t.Fatal("destroyed lease id was resurrected")
	}
}

func TestGetExplains(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("curious", "wakelock")
	var got leaseResponse
	if code := r.call("GET", fmt.Sprintf("/v1/leases/%d", lr.LeaseID), nil, &got); code != 200 {
		t.Fatalf("get: status %d", code)
	}
	if got.Explain == "" {
		t.Fatal("GET must include the Explain rendering")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("m", "wakelock")
	r.renew(lr.LeaseID, usageReport{})
	var snap Snapshot
	if code := r.call("GET", "/metrics", nil, &snap); code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	if snap.Clients != 1 || snap.Leases.Live != 1 {
		t.Fatalf("snapshot clients=%d live=%d, want 1/1", snap.Clients, snap.Leases.Live)
	}
	acq := snap.Requests["acquire"]
	if acq.Count != 1 {
		t.Fatalf("acquire count = %d, want 1", acq.Count)
	}
	if acq.LatencyMS.P50 <= 0 || acq.LatencyMS.P99 < acq.LatencyMS.P50 {
		t.Fatalf("implausible latency percentiles: %+v", acq.LatencyMS)
	}
}

// TestAdmissionBound fills the in-flight semaphore and checks overload
// requests are rejected with 503 and counted.
func TestAdmissionBound(t *testing.T) {
	opts := testOptions()
	opts.MaxInflight = 2
	r := newRig(t, opts)
	r.s.inflight <- struct{}{}
	r.s.inflight <- struct{}{}
	code := r.call("POST", "/v1/leases", acquireRequest{Client: "x", Kind: "wakelock"}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
	<-r.s.inflight
	<-r.s.inflight
	if got := r.s.metrics.rejected.Load(); got != 1 {
		t.Fatalf("rejections = %d, want 1", got)
	}
	// Metrics are exempt from admission even at the limit.
	r.s.inflight <- struct{}{}
	r.s.inflight <- struct{}{}
	if code := r.call("GET", "/metrics", nil, &Snapshot{}); code != 200 {
		t.Fatalf("metrics under overload: status %d, want 200", code)
	}
	<-r.s.inflight
	<-r.s.inflight
}
