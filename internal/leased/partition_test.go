package leased

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/lease"
	"repro/internal/netchaos"
)

// Partition matrix: a 3-node auto-failover cluster whose every inter-node
// link (HTTP for election polls, TCP for replication) runs through its own
// netchaos proxy, so tests can blackhole, drop one direction of, or flap any
// directed link independently — the network a real split gives you, inside
// one process.
//
// Timing: ping 25ms × 8 missed = 200ms detection window, 50ms leadership
// lease. A deposed leader's lease expires ≤ 75ms after its last quorum ack
// (term + one tick); the successor waits out 250ms (detection + term) of
// silence before promoting, leaving >100ms of scheduling slack between the
// two even on a loaded CI box.
const (
	partPing   = 25 * time.Millisecond
	partMissed = 8
	partLease  = 50 * time.Millisecond
)

func partDetect() time.Duration { return time.Duration(partMissed) * partPing }

// linkPair is the two proxies carrying one directed node→node view.
type linkPair struct {
	http *netchaos.Proxy
	repl *netchaos.Proxy
}

type autoNode struct {
	*rig
	id string
}

type autoCluster struct {
	t     *testing.T
	ids   []string
	nodes map[string]*autoNode
	px    map[string]map[string]*linkPair // px[viewer][target]
}

// newAutoCluster boots nodes "a" (primary), "b", "c" (followers of a) with
// auto-failover armed and every inter-node link proxied per viewer.
func newAutoCluster(t *testing.T, shards int) *autoCluster {
	t.Helper()
	ids := []string{"a", "b", "c"}
	c := &autoCluster{t: t, ids: ids, nodes: map[string]*autoNode{}, px: map[string]map[string]*linkPair{}}

	httpLn := map[string]net.Listener{}
	replLn := map[string]net.Listener{}
	for _, id := range ids {
		httpLn[id] = listenTCP(t)
		replLn[id] = listenTCP(t)
	}
	for _, v := range ids {
		c.px[v] = map[string]*linkPair{}
		for _, tgt := range ids {
			if tgt == v {
				continue
			}
			ph, err := netchaos.New(httpLn[tgt].Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			pr, err := netchaos.New(replLn[tgt].Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ph.Close(); pr.Close() })
			c.px[v][tgt] = &linkPair{http: ph, repl: pr}
		}
	}

	peersFor := func(v string) []Peer {
		var out []Peer
		for _, id := range ids {
			if id == v {
				out = append(out, Peer{ID: id, URL: "http://" + httpLn[id].Addr().String(), ReplAddr: replLn[id].Addr().String()})
			} else {
				lp := c.px[v][id]
				out = append(out, Peer{ID: id, URL: "http://" + lp.http.Addr(), ReplAddr: lp.repl.Addr()})
			}
		}
		return out
	}

	for _, id := range ids {
		id := id
		opts := testOptions()
		opts.Shards = shards
		cc := &ClusterConfig{
			Role:         "primary",
			Advertise:    "http://" + httpLn[id].Addr().String(),
			NodeID:       id,
			Peers:        peersFor(id),
			AutoFailover: true,
			LeaseTerm:    partLease,
			PingEvery:    partPing,
			MissedPings:  partMissed,
			Logf:         func(format string, args ...any) { t.Logf("[%s] "+format, append([]any{id}, args...)...) },
		}
		if id != "a" {
			cc.Role = "follower"
			cc.PrimaryAddr = c.px[id]["a"].repl.Addr()
		}
		opts.Cluster = cc
		s := NewServer(opts)
		ts := &httptest.Server{Listener: httpLn[id], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		t.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		s.ServeReplication(replLn[id])
		if id != "a" {
			if err := s.StartFollowing(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.StartAutoFailover(); err != nil {
			t.Fatal(err)
		}
		c.nodes[id] = &autoNode{rig: &rig{t: t, s: s, ts: ts, cli: ts.Client()}, id: id}
	}
	return c
}

func stateJSON(t *testing.T, st []persistedState) string {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func listenTCP(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func (c *autoCluster) node(id string) *autoNode { return c.nodes[id] }

// cut impairs the directed view→target link (both the HTTP and repl legs).
func (c *autoCluster) cut(viewer, target, spec string) {
	c.t.Helper()
	lp := c.px[viewer][target]
	if err := lp.http.Configure(spec); err != nil {
		c.t.Fatal(err)
	}
	if err := lp.repl.Configure(spec); err != nil {
		c.t.Fatal(err)
	}
}

// isolate blackholes every link touching id, in both directions.
func (c *autoCluster) isolate(id string) {
	for _, v := range c.ids {
		if v == id {
			continue
		}
		c.cut(v, id, "blackhole=1")
		c.cut(id, v, "blackhole=1")
	}
}

// healAll clears every impairment in the cluster.
func (c *autoCluster) healAll() {
	for _, v := range c.ids {
		for tgt, lp := range c.px[v] {
			_ = tgt
			if err := lp.http.Configure(""); err != nil {
				c.t.Fatal(err)
			}
			if err := lp.repl.Configure(""); err != nil {
				c.t.Fatal(err)
			}
		}
	}
}

// waitUntil polls cond until it holds or the deadline passes.
func (c *autoCluster) waitUntil(what string, timeout time.Duration, cond func() bool) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.t.Fatalf("timed out waiting for %s", what)
}

// waitFollowerSynced waits until follower id mirrors the current primary
// prim: all streams connected, zero lag. Call with the primary quiesced.
func (c *autoCluster) waitFollowerSynced(prim, fol string) {
	c.t.Helper()
	ps, fs := c.node(prim).s, c.node(fol).s
	c.waitUntil(fmt.Sprintf("%s synced to %s", fol, prim), 10*time.Second, func() bool {
		st, ok := fs.replicaStats()
		if !ok {
			return false
		}
		var src int64
		for i := range ps.shards {
			src += ps.prim.Stream(i).Seq()
		}
		return st.Connected == len(ps.shards) && st.AppliedSeq >= src && st.Lag() == 0
	})
}

// clusterMonitor samples every node's (role, writable, epoch) continuously
// and records two invariant violations: more than one writable node in a
// sample, and any node's epoch going backwards.
type clusterMonitor struct {
	mu         sync.Mutex
	violations []string
	samples    int
	stop       chan struct{}
	done       chan struct{}
}

func (c *autoCluster) startMonitor() *clusterMonitor {
	m := &clusterMonitor{stop: make(chan struct{}), done: make(chan struct{})}
	lastEpoch := map[string]uint64{}
	go func() {
		defer close(m.done)
		for {
			select {
			case <-m.stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			writable := 0
			var holders []string
			m.mu.Lock()
			m.samples++
			for _, id := range c.ids {
				s := c.node(id).s
				if s.Writable() {
					writable++
					holders = append(holders, id)
				}
				e := s.ClusterEpoch()
				if prev, ok := lastEpoch[id]; ok && e < prev {
					m.violations = append(m.violations, fmt.Sprintf("node %s epoch went backwards: %d -> %d", id, prev, e))
				}
				lastEpoch[id] = e
			}
			if writable > 1 {
				m.violations = append(m.violations, fmt.Sprintf("%d writable leaders at once: %v", writable, holders))
			}
			m.mu.Unlock()
		}
	}()
	return m
}

// check stops the monitor and fails the test on any recorded violation.
func (m *clusterMonitor) check(t *testing.T) {
	t.Helper()
	close(m.stop)
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.samples == 0 {
		t.Fatal("monitor took no samples")
	}
	for _, v := range m.violations {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestAutoFailoverLeaderIsolated is the tentpole scenario: the leader is
// blackholed (not killed), the followers detect the silence, the
// deterministic winner self-promotes with no operator involvement, the loser
// re-aims, the old leader goes read-only before the successor opens, and a
// heal fences it.
func TestAutoFailoverLeaderIsolated(t *testing.T) {
	c := newAutoCluster(t, 2)
	a, b, ch := c.node("a"), c.node("b"), c.node("c")

	// Seed real state, including a detected defaulter, then let everyone
	// catch up so the failover has something to preserve.
	torchID := driveDefaulter(a.rig)
	survivor := a.acquire("survivor", "gps")
	c.waitFollowerSynced("a", "b")
	c.waitFollowerSynced("a", "c")

	mon := c.startMonitor()
	c.isolate("a")

	// The leader's lease expires: writes suspend on a, well before any
	// successor can exist.
	c.waitUntil("a read-only", 5*time.Second, func() bool { return !a.s.Writable() })
	if code := a.call("POST", "/v1/leases", acquireRequest{Client: "minority", Kind: "gps"}, nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("write on the isolated leader: status %d, want 421", code)
	}

	// Both survivors are at the same applied offset, so the ID tiebreak
	// picks b, deterministically — no operator promote anywhere.
	c.waitUntil("b self-promoted", 10*time.Second, func() bool {
		return b.s.Role() == "primary" && b.s.ClusterEpoch() == 1
	})
	if got := ch.s.Role(); got != "follower" {
		t.Fatalf("loser c is %q, want follower", got)
	}
	// The loser re-aims at the winner via the election poll's leader hint.
	c.waitUntil("c re-aimed at b", 10*time.Second, func() bool {
		st, ok := ch.s.replicaStats()
		return ok && ch.s.ClusterEpoch() == 1 && st.Connected == len(b.s.shards)
	})

	// Replication integrity under the new leader: a mark journaled at b must
	// land byte-equal on c. (Exact equality with a pre-cut capture is not a
	// meaningful target — the lease engine is time-driven, so state lawfully
	// evolves during the failover; continuity is asserted through the
	// defaulter and survivor-lease checks below instead.)
	c.waitFollowerSynced("b", "c")
	bState := markAndCapture(b.s)
	c.waitFollowerSynced("b", "c")
	if postState := captureShards(ch.s); !reflect.DeepEqual(bState, postState) {
		t.Fatalf("loser diverged from the new leader\n pre: %s\npost: %s",
			stateJSON(t, bState), stateJSON(t, postState))
	}
	var got leaseResponse
	if code := b.call("GET", fmt.Sprintf("/v1/leases/%d", torchID), nil, &got); code != 200 {
		t.Fatalf("defaulter lease lookup on the new leader: status %d", code)
	}
	if got.State != lease.Deferred.String() {
		t.Fatalf("defaulter state after failover = %q, want %s", got.State, lease.Deferred)
	}
	if code := b.call("POST", fmt.Sprintf("/v1/leases/%d/renew", survivor.LeaseID), usageReport{CPUMS: 5}, nil); code != 200 {
		t.Fatalf("renew on the new leader: status %d", code)
	}

	// Heal: the ex-leader is fenced by the first epoch exchange, and its
	// 421s point at the successor.
	c.healAll()
	c.waitUntil("a fenced", 10*time.Second, func() bool { return a.s.Role() == "fenced" })
	req, _ := newJSONRequest("POST", a.ts.URL+"/v1/leases", acquireRequest{Client: "late", Kind: "gps"})
	resp, err := a.cli.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("write on fenced ex-leader: status %d, want 421", resp.StatusCode)
	}
	if hint := resp.Header.Get("Leader"); hint != b.ts.URL {
		t.Fatalf("fenced leader hint = %q, want %q", hint, b.ts.URL)
	}

	mon.check(t)
}

// TestPartitionMinorityFollower: a lone partitioned follower suspects the
// leader but cannot reach a quorum of fellow suspects, so it must not elect
// itself; the majority side keeps serving undisturbed.
func TestPartitionMinorityFollower(t *testing.T) {
	c := newAutoCluster(t, 1)
	a, ch := c.node("a"), c.node("c")
	a.acquire("steady", "wakelock")
	c.waitFollowerSynced("a", "c")

	mon := c.startMonitor()
	c.isolate("c")

	c.waitUntil("c suspect", 5*time.Second, func() bool {
		st, ok := ch.s.replicaStats()
		return ok && st.Suspect
	})
	// Give the would-be election ample time to (wrongly) happen.
	time.Sleep(partDetect() + 4*partLease)
	if got := ch.s.Role(); got != "follower" {
		t.Fatalf("minority follower became %q", got)
	}
	if e := ch.s.ClusterEpoch(); e != 0 {
		t.Fatalf("minority follower moved to epoch %d", e)
	}
	if !a.s.Writable() {
		t.Fatal("majority leader lost its lease to a minority partition")
	}
	if code := a.call("POST", "/v1/leases", acquireRequest{Client: "during-split", Kind: "gps"}, nil); code != 200 {
		t.Fatalf("write on majority leader during split: status %d", code)
	}

	c.healAll()
	c.waitFollowerSynced("a", "c")
	st, _ := ch.s.replicaStats()
	if st.Suspect {
		t.Fatal("suspicion did not clear after heal")
	}
	mon.check(t)
}

// TestPartitionOneWayLink: the leader's frames to c vanish but everything
// else flows. c must suspect (it hears nothing) yet not depose the leader —
// the other follower is healthy, so no quorum of suspects exists.
func TestPartitionOneWayLink(t *testing.T) {
	c := newAutoCluster(t, 1)
	a, ch := c.node("a"), c.node("c")
	a.acquire("oneway", "gps")
	c.waitFollowerSynced("a", "c")

	mon := c.startMonitor()
	// s2c on c's view of a: a's bytes toward c are dropped; c's dials and
	// acks still arrive at a.
	c.cut("c", "a", "drop=s2c")

	c.waitUntil("c suspect", 5*time.Second, func() bool {
		st, ok := ch.s.replicaStats()
		return ok && st.Suspect
	})
	time.Sleep(partDetect() + 4*partLease)
	if got := ch.s.Role(); got != "follower" {
		t.Fatalf("one-way-partitioned follower became %q", got)
	}
	for _, id := range c.ids {
		if e := c.node(id).s.ClusterEpoch(); e != 0 {
			t.Fatalf("node %s moved to epoch %d over a one-way link", id, e)
		}
	}
	if !a.s.Writable() {
		t.Fatal("leader lost its lease over a one-way link to one follower")
	}

	c.cut("c", "a", "")
	c.waitFollowerSynced("a", "c")
	mon.check(t)
}

// TestPartitionFlappingLink: outages shorter than the detection window must
// not trip the failure detector at all — no suspicion, no election, no
// epoch movement.
func TestPartitionFlappingLink(t *testing.T) {
	c := newAutoCluster(t, 1)
	a, ch := c.node("a"), c.node("c")
	a.acquire("flappy", "wakelock")
	c.waitFollowerSynced("a", "c")

	mon := c.startMonitor()
	// Down 75ms of every 150ms: well under the 200ms detection window.
	c.cut("c", "a", "flap=75ms:150ms")

	deadline := time.Now().Add(partDetect() * 4)
	for time.Now().Before(deadline) {
		if st, ok := ch.s.replicaStats(); ok && st.Suspect {
			t.Fatal("sub-threshold flapping tripped the failure detector")
		}
		if got := ch.s.Role(); got != "follower" {
			t.Fatalf("node c became %q under flapping", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if e := ch.s.ClusterEpoch(); e != 0 {
		t.Fatalf("flapping link moved the epoch to %d", e)
	}

	c.cut("c", "a", "")
	c.waitFollowerSynced("a", "c")
	mon.check(t)
}

// TestPartitionHealCatchup: a follower partitioned through a burst of writes
// reconnects into a fresh snapshot and converges to the exact primary state.
func TestPartitionHealCatchup(t *testing.T) {
	c := newAutoCluster(t, 2)
	a, ch := c.node("a"), c.node("c")
	a.acquire("pre-cut", "gps")
	c.waitFollowerSynced("a", "c")
	preSnaps := func() int64 {
		st, _ := ch.s.replicaStats()
		return st.Snapshots
	}()

	c.isolate("c")
	// The burst c misses entirely.
	for i := 0; i < 40; i++ {
		if code := a.call("POST", "/v1/leases", acquireRequest{Client: fmt.Sprintf("missed-%d", i), Kind: "wakelock"}, nil); code != 200 {
			t.Fatalf("write %d during partition: status %d", i, code)
		}
	}
	// Hold the partition until the read deadlines kill c's stalled sessions;
	// healing sooner would just resume them (blackhole is backpressure, not
	// loss) and no snapshot catch-up would be needed.
	c.waitUntil("c's sessions dead", 5*time.Second, func() bool {
		st, ok := ch.s.replicaStats()
		return ok && st.Connected == 0
	})

	c.healAll()
	// Let the re-snapshot land first: a mark journaled before the reconnect
	// would be outrun by the (later-instant) snapshot.
	c.waitFollowerSynced("a", "c")
	st, _ := ch.s.replicaStats()
	if st.Snapshots <= preSnaps {
		t.Fatalf("heal did not re-snapshot: %d snapshots before, %d after", preSnaps, st.Snapshots)
	}
	pre := markAndCapture(a.s)
	c.waitFollowerSynced("a", "c")
	if post := captureShards(ch.s); !reflect.DeepEqual(pre, post) {
		t.Fatalf("post-heal follower state diverged from the primary\n pre: %s\npost: %s",
			stateJSON(t, pre), stateJSON(t, post))
	}
}

// TestSplitBrainAttempt drives writes at both sides across a failover and
// asserts the handoff is strict: once the successor accepts its first
// write, the deposed leader accepts none — and after the heal it is fenced,
// pointing clients at the successor.
func TestSplitBrainAttempt(t *testing.T) {
	c := newAutoCluster(t, 1)
	a, b := c.node("a"), c.node("b")
	a.acquire("seed", "gps")
	c.waitFollowerSynced("a", "b")
	c.waitFollowerSynced("a", "c")

	mon := c.startMonitor()
	c.isolate("a")

	// Wait for the successor's first accepted write.
	c.waitUntil("b accepts a write", 10*time.Second, func() bool {
		return b.call("POST", "/v1/leases", acquireRequest{Client: "b-side", Kind: "gps"}, nil) == 200
	})

	// From this instant on the old leader must accept nothing.
	for i := 0; i < 10; i++ {
		code := a.call("POST", "/v1/leases", acquireRequest{Client: fmt.Sprintf("a-side-%d", i), Kind: "gps"}, nil)
		if code == 200 {
			t.Fatalf("deposed leader accepted write %d after the successor opened", i)
		}
		if code != http.StatusMisdirectedRequest {
			t.Fatalf("deposed leader answered %d, want 421", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	c.healAll()
	c.waitUntil("a fenced after heal", 10*time.Second, func() bool { return a.s.Role() == "fenced" })
	c.waitUntil("a redirects to b", 5*time.Second, func() bool { return a.s.LeaderHint() == b.ts.URL })
	mon.check(t)
}

// TestFlakyReplicationConverges exercises the repl.drop / repl.delay fault
// sites: with the primary's replication sender randomly killing and stalling
// sessions, the follower must still converge to the exact primary state —
// the redial/backoff-reset/re-snapshot loop doing its job without any proxy.
func TestFlakyReplicationConverges(t *testing.T) {
	popts := testOptions()
	popts.Shards = 2
	popts.Faults = faults.New(7)
	if err := popts.Faults.Configure("repl.drop=0.05,repl.delay=0.05:2ms"); err != nil {
		t.Fatal(err)
	}
	popts.Cluster = &ClusterConfig{Role: "primary", Advertise: "http://flaky.invalid", PingEvery: 20 * time.Millisecond}
	prim := NewServer(popts)
	defer prim.Close()
	ln := listenTCP(t)
	prim.ServeReplication(ln)

	fopts := testOptions()
	fopts.Shards = 2
	fopts.Cluster = &ClusterConfig{
		Role: "follower", PrimaryAddr: ln.Addr().String(),
		PingEvery: 20 * time.Millisecond, Logf: t.Logf,
	}
	fol := NewServer(fopts)
	defer fol.Close()
	if err := fol.StartFollowing(); err != nil {
		t.Fatal(err)
	}

	pr := httptest.NewServer(prim.Handler())
	defer pr.Close()
	prig := &rig{t: t, s: prim, ts: pr, cli: pr.Client()}
	for i := 0; i < 300; i++ {
		if code := prig.call("POST", "/v1/leases", acquireRequest{Client: fmt.Sprintf("flaky-%d", i), Kind: "wakelock"}, nil); code != 200 {
			t.Fatalf("acquire %d: status %d", i, code)
		}
	}

	if st := popts.Faults.Stats(); st["repl.drop"].Fires == 0 {
		t.Fatal("repl.drop never fired; the test exercised nothing")
	}

	// Heal the sites, let the follower get a clean session, then mark: a
	// fault-killed session after the mark would re-snapshot at a later
	// instant and outrun the capture.
	if err := popts.Faults.Configure("repl.drop=0,repl.delay=0"); err != nil {
		t.Fatal(err)
	}
	waitConverged := func() {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			st, ok := fol.replicaStats()
			var src int64
			for i := range prim.shards {
				src += prim.prim.Stream(i).Seq()
			}
			if ok && st.AppliedSeq >= src && st.Lag() == 0 && st.Connected == len(prim.shards) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower never converged under flaky replication: %+v (src %d)", st, src)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	waitConverged()
	pre := markAndCapture(prim)
	waitConverged()
	if post := captureShards(fol); !reflect.DeepEqual(pre, post) {
		t.Fatalf("flaky-replication follower state diverged\n pre: %s\npost: %s", stateJSON(t, pre), stateJSON(t, post))
	}
}
