package leased

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/android/hooks"
	"repro/internal/durable"
	"repro/internal/lease"
	"repro/internal/power"
	"repro/internal/runtime"
	"repro/internal/simclock"
)

// Crash safety. A shard's whole mutable state is a deterministic function of
// (a) the lease policy, (b) the sequence of externally-driven mutations
// routed to it and (c) the virtual instants at which they executed: every
// internal transition — term checks, deferrals, restores, reputation
// updates — is an event the simulation kernel fires at an exact virtual
// timestamp, and Wall.Do guarantees each mutation runs at one frozen instant
// with all due events already fired. So each shard's write-ahead journal
// records only the external mutations routed to that shard, stamped with
// their virtual instants, and recovery replays them on an unstarted wall
// clock: RunVirtual(rec.At) re-fires the internal events exactly as the live
// run did, then the mutation re-applies. Log order is clock order because
// records are appended inside the same Do section that applies them.
//
// Sharding changes the on-disk layout, not the model: the data directory
// holds one subdirectory per shard (shard-00, shard-01, ...), each a
// self-contained durable.Store — journal, snapshot, epoch — that recovers
// independently. Shards never appear in each other's logs, so Open replays
// all of them in parallel. Each shard's checkpoint pins the lease policy
// AND the (shard index, shard count) it was written under: state partitions
// by hash(client) mod count, so reopening with a different count would
// route clients to shards that have never heard of them — Open refuses,
// exactly as it refuses a changed lease policy.
//
// A periodic checkpoint (every Options.SnapshotEvery records per shard)
// serializes the shard's full state — manager, resource table, client/UID
// map, app counters, dedup cache — so replay cost stays bounded; the
// durable store guarantees the snapshot+journal pair is consistent across a
// crash at any instant.

// opRecord is one journaled external mutation. At is the virtual instant the
// operation executed; replay advances the clock there before re-applying.
// LeaseID is shard-local: the journal belongs to one shard, and the shard
// tag lives in the directory name, not in every record.
type opRecord struct {
	At simclock.Time `json:"at"`
	Op string        `json:"op"` // acquire | renew | release | mark

	Client string `json:"client,omitempty"` // acquire
	Kind   string `json:"kind,omitempty"`   // acquire

	LeaseID uint64       `json:"lease_id,omitempty"` // renew | release
	Destroy bool         `json:"destroy,omitempty"`  // release
	Report  *usageReport `json:"report,omitempty"`   // renew

	// ReqID is the client's idempotency key, if it sent one; replay uses it
	// to rebuild the dedup cache in the same order the live run filled it.
	ReqID string `json:"req_id,omitempty"`
}

// persistedState is the checkpoint payload: everything a fresh process needs
// to stand one shard back up at one virtual instant.
type persistedState struct {
	Now     simclock.Time      `json:"now"`
	Config  lease.Config       `json:"config"`
	Manager lease.ManagerState `json:"manager"`

	// Shard/Shards pin the routing this state was partitioned under.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`

	// ClusterEpoch is the leadership generation this state was written
	// under; restoring it keeps epoch monotonicity across a crash, so a
	// rebooted replica can never promote into a generation it has already
	// seen. Zero (standalone daemons) is omitted.
	ClusterEpoch uint64 `json:"cluster_epoch,omitempty"`

	Clients []clientEntry `json:"clients,omitempty"`
	NextUID int           `json:"next_uid"`

	Objects   []objState `json:"objects,omitempty"`
	NextObjID uint64     `json:"next_obj_id"`

	Apps  []appEntry   `json:"apps,omitempty"`
	Dedup []dedupEntry `json:"dedup,omitempty"`
}

type clientEntry struct {
	Name string `json:"name"`
	UID  int    `json:"uid"`
}

// objState serializes one robj (the server-side lease proxy).
type objState struct {
	ID      uint64 `json:"id"`
	UID     int    `json:"uid"`
	Kind    int    `json:"kind"`
	Client  string `json:"client"`
	LeaseID uint64 `json:"lease_id"`

	Held       bool `json:"held"`
	Suppressed bool `json:"suppressed"`

	LastSettle simclock.Time `json:"last_settle"`
	AccHeld    int64         `json:"acc_held"`
	AccActive  int64         `json:"acc_active"`

	Used          int64   `json:"used"`
	ReqTime       int64   `json:"req_time"`
	FailedReqTime int64   `json:"failed_req_time"`
	DataPoints    int     `json:"data_points"`
	DistanceM     float64 `json:"distance_m"`

	Acquires int64 `json:"acquires"`
}

type appEntry struct {
	UID   int   `json:"uid"`
	CPU   int64 `json:"cpu"`
	Exc   int   `json:"exc"`
	UI    int   `json:"ui"`
	Inter int   `json:"inter"`
}

// RecoveryInfo summarizes what Open found on disk — for one shard, or
// merged across shards (counts summed, snapshot_loaded true when any shard
// loaded one, snapshot_now the latest).
type RecoveryInfo struct {
	SnapshotLoaded bool          `json:"snapshot_loaded"`
	SnapshotNow    simclock.Time `json:"snapshot_now"`
	Replayed       int           `json:"replayed"`
	TruncatedBytes int64         `json:"truncated_bytes"`
	StaleRecords   int           `json:"stale_records"`
}

func (r *RecoveryInfo) merge(o RecoveryInfo) {
	if o.SnapshotLoaded {
		r.SnapshotLoaded = true
	}
	if o.SnapshotNow > r.SnapshotNow {
		r.SnapshotNow = o.SnapshotNow
	}
	r.Replayed += o.Replayed
	r.TruncatedBytes += o.TruncatedBytes
	r.StaleRecords += o.StaleRecords
}

// shardDir names shard i's subdirectory under the data dir.
func shardDir(i int) string { return fmt.Sprintf("shard-%02d", i) }

// Open stands up a durable daemon from dir: every shard loads its snapshot
// and replays its journal's intact prefix in parallel on unstarted clocks,
// then the recovered virtual instants bind to the wall and serving begins.
// A fresh directory is an empty daemon whose shards immediately write their
// initial checkpoints (pinning the lease policy and the shard count, so a
// later restart with either changed is refused rather than silently
// misinterpreting the journals). The returned RecoveryInfo is the merge
// across shards; per-shard figures surface in /metrics.
func Open(dir string, opts Options) (*Server, RecoveryInfo, error) {
	opts = opts.withDefaults()
	if _, err := os.Stat(filepath.Join(dir, "journal.log")); err == nil {
		return nil, RecoveryInfo{}, fmt.Errorf("leased: %s holds a pre-shard (flat) data layout; migrate it into %s or start from a fresh directory", dir, shardDir(0))
	}
	ce := new(atomic.Uint64)
	shards, infos, err := openShards(dir, opts, ce)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	s := newServerShell(opts, ce)
	s.shards = shards
	// Followers keep their clocks unstarted: they remain in the recovery
	// posture — continuously replaying the primary's stream — until
	// promotion binds the replayed instants to real time.
	follower := opts.Cluster != nil && opts.Cluster.Role == "follower"
	var merged RecoveryInfo
	for i, sh := range shards {
		if !follower {
			sh.clock.Start()
		}
		if !infos[i].SnapshotLoaded && infos[i].Replayed == 0 {
			// First boot of this shard: write the initial checkpoint so the
			// policy and shard count are pinned.
			sh.do(func() { sh.checkpointLocked() })
		}
		merged.merge(infos[i])
	}
	s.initCluster()
	return s, merged, nil
}

// PerShardRecovery re-reads each shard's recovery summary (what its last
// boot found on disk), in shard order. Nil entries never occur; in-memory
// daemons report zero values.
func (s *Server) PerShardRecovery() []RecoveryInfo {
	out := make([]RecoveryInfo, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.recovery
	}
	return out
}

// openShards opens every shard directory and recovers each shard on an
// unstarted clock, in parallel — the shards' logs are disjoint, so their
// replays share nothing. On any error all stores are closed and the first
// error (lowest shard index) is returned.
func openShards(dir string, opts Options, ce *atomic.Uint64) ([]*shard, []RecoveryInfo, error) {
	n := opts.Shards
	shards := make([]*shard, n)
	infos := make([]RecoveryInfo, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			store, res, err := durable.Open(filepath.Join(dir, shardDir(i)), opts.Fsync)
			if err != nil {
				errs[i] = err
				return
			}
			sh, info, err := recoverShard(i, store, res, opts, ce)
			if err != nil {
				store.Close()
				errs[i] = fmt.Errorf("%s: %w", shardDir(i), err)
				return
			}
			shards[i], infos[i] = sh, info
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, sh := range shards {
				if sh != nil {
					sh.store.Close()
				}
			}
			return nil, nil, err
		}
	}
	return shards, infos, nil
}

// recoverShard rebuilds one shard from what its store found, leaving the
// clock unstarted — frozen at the last journaled instant — so callers
// (Open, and the crash-equality tests) can inspect or bind it to real time
// themselves.
func recoverShard(id int, store *durable.Store, res durable.OpenResult, opts Options, ce *atomic.Uint64) (*shard, RecoveryInfo, error) {
	sh := newShard(id, opts, runtime.NewWallUnstarted(), ce)
	sh.store = store
	info := RecoveryInfo{TruncatedBytes: res.TruncatedBytes, StaleRecords: res.StaleRecords}

	if res.Snapshot != nil {
		var st persistedState
		if err := json.Unmarshal(res.Snapshot, &st); err != nil {
			return nil, info, fmt.Errorf("leased: corrupt snapshot payload: %w", err)
		}
		if st.Config != sh.mgr.Config() {
			return nil, info, fmt.Errorf("leased: lease policy changed since the snapshot was written; refusing to reinterpret the journal (wipe the data dir or restore the old policy)")
		}
		if st.Shards != opts.Shards || st.Shard != id {
			return nil, info, fmt.Errorf("leased: snapshot was written as shard %d of %d but is being opened as shard %d of %d; state partitions by hash(client) mod shard count, so a count change would strand clients on shards that never heard of them (wipe the data dir or restore -shards %d)", st.Shard, st.Shards, id, opts.Shards, st.Shards)
		}
		if err := sh.restoreState(st); err != nil {
			return nil, info, err
		}
		info.SnapshotLoaded, info.SnapshotNow = true, st.Now
	}
	for _, raw := range res.Records {
		var rec opRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, info, fmt.Errorf("leased: corrupt journal record %d: %w", info.Replayed, err)
		}
		sh.clock.RunVirtual(rec.At)
		sh.replayRecord(rec)
		info.Replayed++
	}
	sh.recovery = info
	return sh, info, nil
}

// journalLocked appends rec to this shard's journal and triggers the
// periodic checkpoint. Callers hold the shard clock (so log order is clock
// order). Append failures degrade durability, not availability: the daemon
// keeps serving and surfaces the error count in /metrics.
func (sh *shard) journalLocked(rec *opRecord) {
	if sh.store == nil && sh.repl == nil {
		return
	}
	// Hand-rolled, byte-identical to json.Marshal (codec.go) — the journal
	// stays plain JSON for replay and external tools, without the per-op
	// reflection or garbage. The Append copies to the kernel before
	// returning, so the shard-owned scratch is free to be reused.
	sh.jbuf = appendOpRecord(sh.jbuf[:0], rec)
	if sh.repl != nil {
		// Publish the exact journal bytes to followers. Still inside the Do
		// section, so stream order is clock order, same as the log. The
		// subscriber copies into its own buffer; jbuf stays shard-owned.
		sh.repl.Publish(sh.jbuf)
	}
	if sh.store == nil {
		return
	}
	if err := sh.store.Append(sh.jbuf); err != nil {
		sh.metrics.journalErrors.Add(1)
		return
	}
	if sh.store.SinceCheckpoint() >= sh.opts.SnapshotEvery {
		sh.checkpointLocked()
	}
}

// checkpointLocked serializes the shard's full state and swaps it in as the
// new snapshot. Callers hold the shard clock.
func (sh *shard) checkpointLocked() {
	if sh.store == nil {
		return
	}
	payload, err := json.Marshal(sh.captureState())
	if err == nil {
		// The durable epoch is floored into the current leadership
		// generation's band, so a promotion's first checkpoints jump past
		// every epoch a stale ex-primary could have written under.
		err = sh.store.CheckpointAt(payload, sh.checkpointEpochTarget())
	}
	if err != nil {
		sh.metrics.journalErrors.Add(1)
		return
	}
	sh.metrics.checkpoints.Add(1)
}

// Checkpoint forces a snapshot of every shard now; the daemon calls it on
// graceful shutdown so the next boot replays zero records.
func (s *Server) Checkpoint() {
	for _, sh := range s.shards {
		sh.do(func() { sh.checkpointLocked() })
	}
}

// captureState serializes one shard. Callers hold the shard clock.
// Iteration over every map is sorted, so equal states produce equal
// payloads.
func (sh *shard) captureState() persistedState {
	st := persistedState{
		Now:       sh.clock.Now(),
		Config:    sh.mgr.Config(),
		Manager:   sh.mgr.CaptureState(),
		Shard:     sh.id,
		Shards:    sh.opts.Shards,
		NextUID:   int(sh.nextUID),
		NextObjID: sh.res.nextID,
	}
	if sh.cepoch != nil {
		st.ClusterEpoch = sh.cepoch.Load()
	}
	for _, uid := range sortedUIDs(sh.clientName) {
		st.Clients = append(st.Clients, clientEntry{Name: sh.clientName[uid], UID: int(uid)})
	}
	ids := make([]uint64, 0, len(sh.res.objs))
	for id := range sh.res.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := sh.res.objs[id]
		st.Objects = append(st.Objects, objState{
			ID: o.id, UID: int(o.uid), Kind: int(o.kind), Client: o.client,
			LeaseID: o.leaseID, Held: o.held, Suppressed: o.suppressed,
			LastSettle: o.lastSettle,
			AccHeld:    int64(o.accHeld), AccActive: int64(o.accActive),
			Used: int64(o.used), ReqTime: int64(o.reqTime),
			FailedReqTime: int64(o.failedReqTime),
			DataPoints:    o.dataPoints, DistanceM: o.distanceM,
			Acquires: o.acquires,
		})
	}
	for _, uid := range sortedStatUIDs(sh.apps) {
		st.Apps = append(st.Apps, appEntry{
			UID: int(uid), CPU: int64(sh.apps.cpu[uid]),
			Exc: sh.apps.exc[uid], UI: sh.apps.ui[uid], Inter: sh.apps.inter[uid],
		})
	}
	st.Dedup = sh.dedup.entries()
	return st
}

// restoreState rebuilds one shard from a checkpoint. The clock must be
// unstarted; the manager must be fresh.
func (sh *shard) restoreState(st persistedState) error {
	sh.clock.RunVirtual(st.Now)
	return sh.restoreStateLocked(st)
}

// restoreStateLocked is restoreState minus the clock advance, for callers
// already inside a Do section (the replication snapshot path, which resets
// and advances the clock before entering the critical section).
func (sh *shard) restoreStateLocked(st persistedState) error {
	if sh.cepoch != nil {
		// Adopt the persisted leadership generation, monotonically: the
		// server-wide epoch is the max across shards (they are checkpointed
		// at different instants, so bands can briefly differ on disk).
		for {
			cur := sh.cepoch.Load()
			if st.ClusterEpoch <= cur || sh.cepoch.CompareAndSwap(cur, st.ClusterEpoch) {
				break
			}
		}
	}
	sh.nextUID = power.UID(st.NextUID)
	for _, c := range st.Clients {
		sh.clients[c.Name] = power.UID(c.UID)
		sh.clientName[power.UID(c.UID)] = c.Name
	}
	sh.res.nextID = st.NextObjID
	for _, os := range st.Objects {
		o := &robj{
			id: os.ID, uid: power.UID(os.UID), kind: hooks.Kind(os.Kind),
			client: os.Client, leaseID: os.LeaseID,
			held: os.Held, suppressed: os.Suppressed,
			lastSettle: os.LastSettle,
			accHeld:    time.Duration(os.AccHeld), accActive: time.Duration(os.AccActive),
			used: time.Duration(os.Used), reqTime: time.Duration(os.ReqTime),
			failedReqTime: time.Duration(os.FailedReqTime),
			dataPoints:    os.DataPoints, distanceM: os.DistanceM,
			acquires: os.Acquires,
		}
		sh.res.objs[o.id] = o
		sh.byKey[clientKey{o.uid, o.kind}] = o
		sh.byLease[o.leaseID] = o
	}
	for _, a := range st.Apps {
		uid := power.UID(a.UID)
		sh.apps.cpu[uid] = time.Duration(a.CPU)
		sh.apps.exc[uid] = a.Exc
		sh.apps.ui[uid] = a.UI
		sh.apps.inter[uid] = a.Inter
	}
	sh.dedup.load(st.Dedup)
	return sh.mgr.RestoreState(st.Manager, func(ls lease.LeaseState) (hooks.Object, bool) {
		r := sh.byLease[ls.ID]
		if r == nil {
			return hooks.Object{}, false
		}
		return sh.res.hookObject(r), true
	})
}

// replayRecord re-applies one journaled mutation during recovery. The clock
// already sits at rec.At. Outcomes are discarded — they were already sent to
// the client in the previous life — except the dedup cache entry, which is
// rebuilt so a retry arriving after the restart still dedups. Replay
// insertions happen in log order, so an overflowed cache evicts in the same
// order it did live and ends up with identical contents.
func (sh *shard) replayRecord(rec opRecord) {
	status, resp, _ := sh.applyRecord(&rec)
	if rec.ReqID != "" && status == 200 {
		// Encode with the same appender the live path uses so the rebuilt
		// cache entry is byte-identical to the one the previous life stored
		// (the crash-equality tests DeepEqual the dedup contents).
		sh.dedup.put(rec.ReqID, appendLeaseResponse(nil, &resp))
	}
}

// --- small helpers ---

func sortUID(uids []power.UID) {
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
}

func sortedUIDs(m map[power.UID]string) []power.UID {
	uids := make([]power.UID, 0, len(m))
	for uid := range m {
		uids = append(uids, uid)
	}
	sortUID(uids)
	return uids
}

func sortedStatUIDs(a *appStats) []power.UID {
	seen := make(map[power.UID]bool)
	var uids []power.UID
	add := func(uid power.UID) {
		if !seen[uid] {
			seen[uid] = true
			uids = append(uids, uid)
		}
	}
	for uid := range a.cpu {
		add(uid)
	}
	for uid := range a.exc {
		add(uid)
	}
	for uid := range a.ui {
		add(uid)
	}
	for uid := range a.inter {
		add(uid)
	}
	sortUID(uids)
	return uids
}
