package leased

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/android/hooks"
	"repro/internal/durable"
	"repro/internal/lease"
	"repro/internal/power"
	"repro/internal/runtime"
	"repro/internal/simclock"
)

// Crash safety. The daemon's whole mutable state is a deterministic function
// of (a) the lease policy, (b) the sequence of externally-driven mutations
// and (c) the virtual instants at which they executed: every internal
// transition — term checks, deferrals, restores, reputation updates — is an
// event the simulation kernel fires at an exact virtual timestamp, and
// Wall.Do guarantees each mutation runs at one frozen instant with all due
// events already fired. So the write-ahead journal records only the external
// mutations, each stamped with its virtual instant, and recovery replays
// them on an unstarted wall clock: RunVirtual(rec.At) re-fires the internal
// events exactly as the live run did, then the mutation re-applies. Log
// order is clock order because records are appended inside the same Do
// section that applies them.
//
// A periodic checkpoint (every Options.SnapshotEvery records) serializes the
// full state — manager, resource table, client/UID map, app counters, dedup
// cache — so replay cost stays bounded; the durable store guarantees the
// snapshot+journal pair is consistent across a crash at any instant.

// opRecord is one journaled external mutation. At is the virtual instant the
// operation executed; replay advances the clock there before re-applying.
type opRecord struct {
	At simclock.Time `json:"at"`
	Op string        `json:"op"` // acquire | renew | release | mark

	Client string `json:"client,omitempty"` // acquire
	Kind   string `json:"kind,omitempty"`   // acquire

	LeaseID uint64       `json:"lease_id,omitempty"` // renew | release
	Destroy bool         `json:"destroy,omitempty"`  // release
	Report  *usageReport `json:"report,omitempty"`   // renew

	// ReqID is the client's idempotency key, if it sent one; replay uses it
	// to rebuild the dedup cache in the same order the live run filled it.
	ReqID string `json:"req_id,omitempty"`
}

// persistedState is the checkpoint payload: everything a fresh process needs
// to stand the daemon back up at one virtual instant.
type persistedState struct {
	Now     simclock.Time      `json:"now"`
	Config  lease.Config       `json:"config"`
	Manager lease.ManagerState `json:"manager"`

	Clients []clientEntry `json:"clients,omitempty"`
	NextUID int           `json:"next_uid"`

	Objects   []objState `json:"objects,omitempty"`
	NextObjID uint64     `json:"next_obj_id"`

	Apps  []appEntry   `json:"apps,omitempty"`
	Dedup []dedupEntry `json:"dedup,omitempty"`
}

type clientEntry struct {
	Name string `json:"name"`
	UID  int    `json:"uid"`
}

// objState serializes one robj (the server-side lease proxy).
type objState struct {
	ID      uint64 `json:"id"`
	UID     int    `json:"uid"`
	Kind    int    `json:"kind"`
	Client  string `json:"client"`
	LeaseID uint64 `json:"lease_id"`

	Held       bool `json:"held"`
	Suppressed bool `json:"suppressed"`

	LastSettle simclock.Time `json:"last_settle"`
	AccHeld    int64         `json:"acc_held"`
	AccActive  int64         `json:"acc_active"`

	Used          int64   `json:"used"`
	ReqTime       int64   `json:"req_time"`
	FailedReqTime int64   `json:"failed_req_time"`
	DataPoints    int     `json:"data_points"`
	DistanceM     float64 `json:"distance_m"`

	Acquires int64 `json:"acquires"`
}

type appEntry struct {
	UID   int   `json:"uid"`
	CPU   int64 `json:"cpu"`
	Exc   int   `json:"exc"`
	UI    int   `json:"ui"`
	Inter int   `json:"inter"`
}

// RecoveryInfo summarizes what Open found on disk.
type RecoveryInfo struct {
	SnapshotLoaded bool          `json:"snapshot_loaded"`
	SnapshotNow    simclock.Time `json:"snapshot_now"`
	Replayed       int           `json:"replayed"`
	TruncatedBytes int64         `json:"truncated_bytes"`
	StaleRecords   int           `json:"stale_records"`
}

// Open stands up a durable daemon from dir: load the snapshot, replay the
// journal's intact prefix on an unstarted clock, then bind the recovered
// virtual instant to the wall and start serving. A fresh directory is an
// empty daemon that immediately writes its initial checkpoint (pinning the
// lease policy, so a later restart with a different policy is refused
// rather than silently misinterpreting the journal).
func Open(dir string, opts Options) (*Server, RecoveryInfo, error) {
	opts = opts.withDefaults()
	store, res, err := durable.Open(dir, opts.Fsync)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	s, info, err := recoverServer(store, res, opts)
	if err != nil {
		store.Close()
		return nil, info, err
	}
	s.clock.Start()
	if !info.SnapshotLoaded && info.Replayed == 0 {
		// First boot: write the initial checkpoint so the policy is pinned.
		s.do(func() { s.checkpointLocked() })
	}
	return s, info, nil
}

// recoverServer rebuilds a daemon from what the store found, leaving the
// clock unstarted — frozen at the last journaled instant — so callers (Open,
// and the crash-equality tests) can inspect or bind it to real time
// themselves.
func recoverServer(store *durable.Store, res durable.OpenResult, opts Options) (*Server, RecoveryInfo, error) {
	s := newServer(opts, runtime.NewWallUnstarted())
	s.store = store
	info := RecoveryInfo{TruncatedBytes: res.TruncatedBytes, StaleRecords: res.StaleRecords}

	if res.Snapshot != nil {
		var st persistedState
		if err := json.Unmarshal(res.Snapshot, &st); err != nil {
			return nil, info, fmt.Errorf("leased: corrupt snapshot payload: %w", err)
		}
		if st.Config != s.mgr.Config() {
			return nil, info, fmt.Errorf("leased: lease policy changed since the snapshot was written; refusing to reinterpret the journal (wipe the data dir or restore the old policy)")
		}
		if err := s.restoreState(st); err != nil {
			return nil, info, err
		}
		info.SnapshotLoaded, info.SnapshotNow = true, st.Now
	}
	for _, raw := range res.Records {
		var rec opRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, info, fmt.Errorf("leased: corrupt journal record %d: %w", info.Replayed, err)
		}
		s.clock.RunVirtual(rec.At)
		s.replayRecord(rec)
		info.Replayed++
	}
	s.recovery = info
	return s, info, nil
}

// journalLocked appends rec to the journal and triggers the periodic
// checkpoint. Callers hold the clock (so log order is clock order). Append
// failures degrade durability, not availability: the daemon keeps serving
// and surfaces the error count in /metrics.
func (s *Server) journalLocked(rec *opRecord) {
	if s.store == nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err == nil {
		err = s.store.Append(raw)
	}
	if err != nil {
		s.metrics.journalErrors.Add(1)
		return
	}
	if s.store.SinceCheckpoint() >= s.opts.SnapshotEvery {
		s.checkpointLocked()
	}
}

// checkpointLocked serializes the full state and swaps it in as the new
// snapshot. Callers hold the clock.
func (s *Server) checkpointLocked() {
	if s.store == nil {
		return
	}
	payload, err := json.Marshal(s.captureState())
	if err == nil {
		err = s.store.Checkpoint(payload)
	}
	if err != nil {
		s.metrics.journalErrors.Add(1)
		return
	}
	s.metrics.checkpoints.Add(1)
}

// Checkpoint forces a snapshot now; the daemon calls it on graceful
// shutdown so the next boot replays zero records.
func (s *Server) Checkpoint() {
	s.do(func() { s.checkpointLocked() })
}

// captureState serializes the daemon. Callers hold the clock. Iteration
// over every map is sorted, so equal states produce equal payloads.
func (s *Server) captureState() persistedState {
	st := persistedState{
		Now:       s.clock.Now(),
		Config:    s.mgr.Config(),
		Manager:   s.mgr.CaptureState(),
		NextUID:   int(s.nextUID),
		NextObjID: s.res.nextID,
	}
	for _, uid := range sortedUIDs(s.clientName) {
		st.Clients = append(st.Clients, clientEntry{Name: s.clientName[uid], UID: int(uid)})
	}
	ids := make([]uint64, 0, len(s.res.objs))
	for id := range s.res.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		o := s.res.objs[id]
		st.Objects = append(st.Objects, objState{
			ID: o.id, UID: int(o.uid), Kind: int(o.kind), Client: o.client,
			LeaseID: o.leaseID, Held: o.held, Suppressed: o.suppressed,
			LastSettle: o.lastSettle,
			AccHeld:    int64(o.accHeld), AccActive: int64(o.accActive),
			Used: int64(o.used), ReqTime: int64(o.reqTime),
			FailedReqTime: int64(o.failedReqTime),
			DataPoints:    o.dataPoints, DistanceM: o.distanceM,
			Acquires: o.acquires,
		})
	}
	for _, uid := range sortedStatUIDs(s.apps) {
		st.Apps = append(st.Apps, appEntry{
			UID: int(uid), CPU: int64(s.apps.cpu[uid]),
			Exc: s.apps.exc[uid], UI: s.apps.ui[uid], Inter: s.apps.inter[uid],
		})
	}
	st.Dedup = s.dedup.entries()
	return st
}

// restoreState rebuilds the daemon from a checkpoint. The clock must be
// unstarted; the manager must be fresh.
func (s *Server) restoreState(st persistedState) error {
	s.clock.RunVirtual(st.Now)
	s.nextUID = power.UID(st.NextUID)
	for _, c := range st.Clients {
		s.clients[c.Name] = power.UID(c.UID)
		s.clientName[power.UID(c.UID)] = c.Name
	}
	s.res.nextID = st.NextObjID
	for _, os := range st.Objects {
		o := &robj{
			id: os.ID, uid: power.UID(os.UID), kind: hooks.Kind(os.Kind),
			client: os.Client, leaseID: os.LeaseID,
			held: os.Held, suppressed: os.Suppressed,
			lastSettle: os.LastSettle,
			accHeld:    time.Duration(os.AccHeld), accActive: time.Duration(os.AccActive),
			used: time.Duration(os.Used), reqTime: time.Duration(os.ReqTime),
			failedReqTime: time.Duration(os.FailedReqTime),
			dataPoints:    os.DataPoints, distanceM: os.DistanceM,
			acquires: os.Acquires,
		}
		s.res.objs[o.id] = o
		s.byKey[clientKey{o.uid, o.kind}] = o
		s.byLease[o.leaseID] = o
	}
	for _, a := range st.Apps {
		uid := power.UID(a.UID)
		s.apps.cpu[uid] = time.Duration(a.CPU)
		s.apps.exc[uid] = a.Exc
		s.apps.ui[uid] = a.UI
		s.apps.inter[uid] = a.Inter
	}
	s.dedup.load(st.Dedup)
	return s.mgr.RestoreState(st.Manager, func(ls lease.LeaseState) (hooks.Object, bool) {
		r := s.byLease[ls.ID]
		if r == nil {
			return hooks.Object{}, false
		}
		return s.res.hookObject(r), true
	})
}

// replayRecord re-applies one journaled mutation during recovery. The clock
// already sits at rec.At. Outcomes are discarded — they were already sent to
// the client in the previous life — except the dedup cache entry, which is
// rebuilt so a retry arriving after the restart still dedups.
func (s *Server) replayRecord(rec opRecord) {
	status, resp, _ := s.applyRecord(&rec)
	if rec.ReqID != "" && status == 200 {
		if raw, err := json.Marshal(resp); err == nil {
			s.dedup.put(rec.ReqID, raw)
		}
	}
}

// --- small helpers ---

func sortUID(uids []power.UID) {
	sort.Slice(uids, func(i, j int) bool { return uids[i] < uids[j] })
}

func sortedUIDs(m map[power.UID]string) []power.UID {
	uids := make([]power.UID, 0, len(m))
	for uid := range m {
		uids = append(uids, uid)
	}
	sortUID(uids)
	return uids
}

func sortedStatUIDs(a *appStats) []power.UID {
	seen := make(map[power.UID]bool)
	var uids []power.UID
	add := func(uid power.UID) {
		if !seen[uid] {
			seen[uid] = true
			uids = append(uids, uid)
		}
	}
	for uid := range a.cpu {
		add(uid)
	}
	for uid := range a.exc {
		add(uid)
	}
	for uid := range a.ui {
		add(uid)
	}
	for uid := range a.inter {
		add(uid)
	}
	sortUID(uids)
	return uids
}
