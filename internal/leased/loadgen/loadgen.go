// Package loadgen replays misbehaving-client patterns against a live
// leased daemon, so the server's defaulter detection can be validated
// end-to-end under real concurrency.
//
// The four behavior profiles are drawn from the paper's app models in
// internal/apps (which themselves reproduce DroidLeaks-style defects),
// rescaled from the apps' minute-long cycles to the daemon's term length:
//
//   - normal: the RunKeeper/Spotify shape — acquire, do real reported work
//     for a modest fraction of the term, release, repeat. Never deferred.
//   - lhb: the Facebook/Torch wakelock leak — acquire once, heartbeat with
//     zero usage, never release. Long-Holding.
//   - lub: the K-9 retry storm — hold continuously, burn CPU, throw
//     exceptions, produce no visible utility. Low-Utility.
//   - fab: the BetterWeather weak-GPS loop — a GPS lease whose reports are
//     dominated by failed request time. Frequent-Ask.
//
// The generator is a plain HTTP client speaking the daemon's wire format;
// it shares no code with the server, so it doubles as a protocol check.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Profile names one client behavior.
type Profile string

// The four behavior profiles.
const (
	Normal Profile = "normal"
	LHB    Profile = "lhb"
	LUB    Profile = "lub"
	FAB    Profile = "fab"
)

// Misbehaving reports whether the profile should be caught by the server.
func (p Profile) Misbehaving() bool { return p == LHB || p == LUB || p == FAB }

func (p Profile) kind() string {
	if p == FAB {
		return "gps"
	}
	return "wakelock"
}

// Options configures a load run.
type Options struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Mix maps profiles to client counts.
	Mix map[Profile]int
	// Duration is how long to generate load.
	Duration time.Duration
	// Beat is the per-client heartbeat cadence (default 10 ms).
	Beat time.Duration
	// Timeout bounds one HTTP request (default 2 s).
	Timeout time.Duration
}

// ParseMix parses "normal=4,lhb=2,fab=2,lub=2".
func ParseMix(s string) (map[Profile]int, error) {
	mix := make(map[Profile]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, countStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: bad mix entry %q (want profile=count)", part)
		}
		p := Profile(strings.TrimSpace(name))
		switch p {
		case Normal, LHB, LUB, FAB:
		default:
			return nil, fmt.Errorf("loadgen: unknown profile %q", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("loadgen: bad count in %q", part)
		}
		mix[p] += n
	}
	return mix, nil
}

// ClientReport is one client's outcome.
type ClientReport struct {
	Client       string `json:"client"`
	Profile      string `json:"profile"`
	Ops          int64  `json:"ops"`
	Errors       int64  `json:"errors"`
	DeferredSeen int64  `json:"deferred_seen"` // responses observed in DEFERRED state
}

// Report aggregates a run.
type Report struct {
	Ops        int64            `json:"ops"`
	Errors     int64            `json:"errors"`
	ByVerb     map[string]int64 `json:"by_verb"`
	DurationMS int64            `json:"duration_ms"`
	OpsPerSec  float64          `json:"ops_per_sec"`

	// MisbehavingClients / MisbehavingDeferred: how many clients ran a
	// defect profile, and how many of those the server deferred at least
	// once. Detection works when they are equal.
	MisbehavingClients  int `json:"misbehaving_clients"`
	MisbehavingDeferred int `json:"misbehaving_deferred"`
	// NormalDeferred counts well-behaved clients the server wrongly
	// deferred (false positives; should be zero).
	NormalDeferred int `json:"normal_deferred"`

	Clients []ClientReport `json:"clients"`
}

// leaseMsg is the subset of the daemon's lease response the generator needs.
type leaseMsg struct {
	LeaseID uint64 `json:"lease_id"`
	State   string `json:"state"`
	TermMS  int64  `json:"term_ms"`
}

type counters struct {
	ops     atomic.Int64
	errors  atomic.Int64
	acquire atomic.Int64
	renew   atomic.Int64
	release atomic.Int64
}

// Run generates load until opts.Duration elapses or ctx is cancelled, then
// reports what the fleet saw.
func Run(ctx context.Context, opts Options) (Report, error) {
	if opts.Beat <= 0 {
		opts.Beat = 10 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	total := 0
	for _, n := range opts.Mix {
		total += n
	}
	if total == 0 {
		return Report{}, fmt.Errorf("loadgen: empty client mix")
	}

	cli := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        total + 8,
			MaxIdleConnsPerHost: total + 8,
		},
	}
	// Probe the daemon before unleashing the fleet.
	if err := probe(ctx, cli, opts.BaseURL); err != nil {
		return Report{}, err
	}

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	var cnt counters
	reports := make([]ClientReport, 0, total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range []Profile{Normal, LHB, LUB, FAB} { // stable order
		for i := 0; i < opts.Mix[p]; i++ {
			c := &client{
				name: fmt.Sprintf("%s-%d", p, i),
				prof: p,
				http: cli,
				base: opts.BaseURL,
				beat: opts.Beat,
				cnt:  &cnt,
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep := c.run(runCtx)
				mu.Lock()
				reports = append(reports, rep)
				mu.Unlock()
			}()
		}
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(reports, func(i, j int) bool { return reports[i].Client < reports[j].Client })
	rep := Report{
		Ops:        cnt.ops.Load(),
		Errors:     cnt.errors.Load(),
		DurationMS: elapsed.Milliseconds(),
		ByVerb: map[string]int64{
			"acquire": cnt.acquire.Load(),
			"renew":   cnt.renew.Load(),
			"release": cnt.release.Load(),
		},
		Clients: reports,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Ops) / secs
	}
	for _, cr := range reports {
		if Profile(cr.Profile).Misbehaving() {
			rep.MisbehavingClients++
			if cr.DeferredSeen > 0 {
				rep.MisbehavingDeferred++
			}
		} else if cr.DeferredSeen > 0 {
			rep.NormalDeferred++
		}
	}
	return rep, nil
}

func probe(ctx context.Context, cli *http.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := cli.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: daemon unreachable: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: daemon health check: %s", resp.Status)
	}
	return nil
}

// client is one simulated app.
type client struct {
	name string
	prof Profile
	http *http.Client
	base string
	beat time.Duration
	cnt  *counters

	ops, errs, deferred int64
}

// call performs one JSON request, counting it under verb.
func (c *client) call(ctx context.Context, verb *atomic.Int64, method, path string, body, out any) bool {
	var buf bytes.Buffer
	if body != nil {
		json.NewEncoder(&buf).Encode(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, &buf)
	if err != nil {
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.ops++
	c.cnt.ops.Add(1)
	verb.Add(1)
	resp, err := c.http.Do(req)
	if err != nil {
		// Cancellation at the end of the run is not a protocol error.
		if ctx.Err() == nil {
			c.errs++
			c.cnt.errors.Add(1)
		}
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		c.errs++
		c.cnt.errors.Add(1)
		return false
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.errs++
			c.cnt.errors.Add(1)
			return false
		}
	}
	return true
}

type acquireMsg struct {
	Client string `json:"client"`
	Kind   string `json:"kind"`
}

type usageMsg struct {
	CPUMS           float64 `json:"cpu_ms,omitempty"`
	RequestMS       float64 `json:"request_ms,omitempty"`
	FailedRequestMS float64 `json:"failed_request_ms,omitempty"`
	UIUpdates       int     `json:"ui_updates,omitempty"`
	Interactions    int     `json:"interactions,omitempty"`
	Exceptions      int     `json:"exceptions,omitempty"`
}

func (c *client) note(state string) {
	if state == "DEFERRED" {
		c.deferred++
	}
}

// run drives the profile until ctx expires.
func (c *client) run(ctx context.Context) ClientReport {
	var lease leaseMsg
	acquire := func() bool {
		ok := c.call(ctx, &c.cnt.acquire, "POST", "/v1/leases", acquireMsg{Client: c.name, Kind: c.prof.kind()}, &lease)
		if ok {
			c.note(lease.State)
		}
		return ok
	}
	renew := func(rep usageMsg) {
		var got leaseMsg
		if c.call(ctx, &c.cnt.renew, "POST", fmt.Sprintf("/v1/leases/%d/renew", lease.LeaseID), rep, &got) {
			c.note(got.State)
		}
	}
	release := func() {
		var got leaseMsg
		if c.call(ctx, &c.cnt.release, "DELETE", fmt.Sprintf("/v1/leases/%d", lease.LeaseID), nil, &got) {
			c.note(got.State)
		}
	}
	sleep := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}

	if !acquire() {
		// One retry after a beat: the daemon may still be warming up.
		if !sleep(c.beat) || !acquire() {
			return c.report()
		}
	}
	beatMS := float64(c.beat) / float64(time.Millisecond)
	term := time.Duration(lease.TermMS) * time.Millisecond
	if term <= 0 {
		term = 5 * time.Second
	}

	for ctx.Err() == nil {
		switch c.prof {
		case LHB:
			// Leak: hold silently forever.
			renew(usageMsg{})
			if !sleep(c.beat) {
				break
			}
		case LUB:
			// Retry storm: full-tilt CPU, exceptions, no utility.
			renew(usageMsg{CPUMS: beatMS, Exceptions: 2})
			if !sleep(c.beat) {
				break
			}
		case FAB:
			// Weak-GPS search: nearly all request time, nearly all failed.
			renew(usageMsg{RequestMS: beatMS * 0.95, FailedRequestMS: beatMS * 0.9})
			if !sleep(c.beat) {
				break
			}
		case Normal:
			// Work burst for ~30% of a term, with real reported utility,
			// then release and rest. Held fraction stays below the LHB
			// threshold and the work keeps the utility score healthy.
			hold := term * 3 / 10
			if hold < c.beat {
				hold = c.beat
			}
			end := time.Now().Add(hold)
			for ctx.Err() == nil && time.Now().Before(end) {
				renew(usageMsg{CPUMS: beatMS * 0.6, UIUpdates: 1, Interactions: 1})
				if !sleep(c.beat) {
					break
				}
			}
			release()
			if !sleep(term - hold) {
				break
			}
			acquire()
		}
	}
	return c.report()
}

func (c *client) report() ClientReport {
	return ClientReport{
		Client:       c.name,
		Profile:      string(c.prof),
		Ops:          c.ops,
		Errors:       c.errs,
		DeferredSeen: c.deferred,
	}
}
