// Package loadgen replays misbehaving-client patterns against a live
// leased daemon, so the server's defaulter detection can be validated
// end-to-end under real concurrency.
//
// The four behavior profiles are drawn from the paper's app models in
// internal/apps (which themselves reproduce DroidLeaks-style defects),
// rescaled from the apps' minute-long cycles to the daemon's term length:
//
//   - normal: the RunKeeper/Spotify shape — acquire, do real reported work
//     for a modest fraction of the term, release, repeat. Never deferred.
//   - lhb: the Facebook/Torch wakelock leak — acquire once, heartbeat with
//     zero usage, never release. Long-Holding.
//   - lub: the K-9 retry storm — hold continuously, burn CPU, throw
//     exceptions, produce no visible utility. Low-Utility.
//   - fab: the BetterWeather weak-GPS loop — a GPS lease whose reports are
//     dominated by failed request time. Frequent-Ask.
//   - crash: a well-behaved client that repeatedly vanishes mid-hold
//     (process death) and later reconnects under the same name, exercising
//     the daemon's name→UID continuity and reputation inheritance.
//
// Clients are self-healing: every mutation carries an idempotency key
// (X-Request-ID) and is retried with jittered exponential backoff on lost
// responses and server sheds, so a daemon restart or a chaotic network
// costs availability, never correctness. Each response carries the server's
// applied-acquire count; clients cross-check it against their own intent
// count and report any double-application — the end-to-end proof that
// retry + dedup compose.
//
// The generator is a plain HTTP client speaking the daemon's wire format;
// it shares no code with the server, so it doubles as a protocol check.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
)

// Profile names one client behavior.
type Profile string

// The behavior profiles.
const (
	Normal Profile = "normal"
	LHB    Profile = "lhb"
	LUB    Profile = "lub"
	FAB    Profile = "fab"
	Crash  Profile = "crash"
)

// Misbehaving reports whether the profile should be caught by the server.
func (p Profile) Misbehaving() bool { return p == LHB || p == LUB || p == FAB }

func (p Profile) kind() string {
	if p == FAB {
		return "gps"
	}
	return "wakelock"
}

// Options configures a load run.
type Options struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7070".
	BaseURL string
	// Mix maps profiles to client counts.
	Mix map[Profile]int
	// Duration is how long to generate load.
	Duration time.Duration
	// Beat is the per-client heartbeat cadence (default 10 ms).
	Beat time.Duration
	// Timeout bounds one HTTP request (default 2 s).
	Timeout time.Duration

	// Batch, when > 1, sends each client's renews as /v1/batch requests
	// carrying this many ops (each with its own request ID, so retried
	// batches dedup per op). 0 or 1 keeps the per-op routes. The daemon
	// caps one batch at 4096 ops / 256 KiB.
	Batch int

	// Retries is how many times one idempotent mutation is attempted before
	// it counts as a failure (default 4). Retries pause with jittered
	// exponential backoff and honor the daemon's Retry-After hint.
	Retries int
	// RetryBase / RetryMax bound the backoff (defaults 25 ms / 1 s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed makes the fleet's jitter and injected faults reproducible.
	Seed int64

	// Prefix is prepended to every client name ("p2-" → "p2-normal-0").
	// Successive runs against the same daemon state need distinct client
	// populations: names are otherwise deterministic, and a second run would
	// inherit the first run's leases — their server-side acquire counts
	// (tripping the double-apply cross-check) and any deferrals earned while
	// the clients were away (tripping the false-positive check).
	Prefix string

	// Faults, when set, injects client-side chaos through the transport:
	// site "client.drop" discards responses after the server has processed
	// the request (the lost-ACK ambiguity), "client.delay" stalls requests.
	Faults *faults.Injector
}

// ParseMix parses "normal=4,lhb=2,fab=2,lub=2".
func ParseMix(s string) (map[Profile]int, error) {
	mix := make(map[Profile]int)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, countStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("loadgen: bad mix entry %q (want profile=count)", part)
		}
		p := Profile(strings.TrimSpace(name))
		switch p {
		case Normal, LHB, LUB, FAB, Crash:
		default:
			return nil, fmt.Errorf("loadgen: unknown profile %q", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("loadgen: bad count in %q", part)
		}
		mix[p] += n
	}
	return mix, nil
}

// ClientReport is one client's outcome.
type ClientReport struct {
	Client  string `json:"client"`
	Profile string `json:"profile"`
	// Shard is the daemon shard this client's lease lives on (from the
	// acquire response); -1 if the client never completed an acquire.
	Shard        int   `json:"shard"`
	Ops          int64 `json:"ops"`
	Errors       int64 `json:"errors"`
	DeferredSeen int64 `json:"deferred_seen"` // responses observed in DEFERRED state

	Sheds          int64 `json:"sheds"`
	Retries        int64 `json:"retries"`
	LostResponses  int64 `json:"lost_responses"`
	Deduped        int64 `json:"deduped"`
	DoubleAcquires int64 `json:"double_acquires"`
	Reconnects     int64 `json:"reconnects"`
	Redirects      int64 `json:"redirects"`
}

// Report aggregates a run.
type Report struct {
	Ops        int64            `json:"ops"`
	Errors     int64            `json:"errors"`
	ByVerb     map[string]int64 `json:"by_verb"`
	DurationMS int64            `json:"duration_ms"`
	OpsPerSec  float64          `json:"ops_per_sec"`

	// MisbehavingClients / MisbehavingDeferred: how many clients ran a
	// defect profile, and how many of those the server deferred at least
	// once. Detection works when they are equal.
	MisbehavingClients  int `json:"misbehaving_clients"`
	MisbehavingDeferred int `json:"misbehaving_deferred"`
	// NormalDeferred counts well-behaved clients the server wrongly
	// deferred (false positives; should be zero). Crash-profile clients are
	// excluded: a lease held dark across a process death is legitimately
	// policy-dependent.
	NormalDeferred int `json:"normal_deferred"`

	// Self-healing telemetry. Sheds are 503 back-pressure responses (paced
	// retries, not failures); Retries counts resent attempts; LostResponses
	// counts transport errors on requests that may still have applied;
	// Deduped counts retries answered from the daemon's idempotency cache;
	// Reconnects counts crash-profile re-attachments under the same name.
	// DoubleAcquires counts server-applied acquires in excess of client
	// intent — any nonzero value is a correctness bug in retry+dedup.
	Sheds          int64 `json:"sheds"`
	Retries        int64 `json:"retries"`
	LostResponses  int64 `json:"lost_responses"`
	Deduped        int64 `json:"deduped"`
	DoubleAcquires int64 `json:"double_acquires"`
	Reconnects     int64 `json:"reconnects"`
	// Redirects counts 421 not-the-leader responses followed to the node
	// named in the Leader header — the cluster-failover client experience.
	Redirects int64 `json:"redirects"`

	// PerShard breaks client count and throughput down by the daemon shard
	// the clients landed on — the fleet-side view of the routing spread.
	PerShard []ShardLoad `json:"per_shard,omitempty"`

	Clients []ClientReport `json:"clients"`
}

// ShardLoad is the load one daemon shard absorbed during the run.
type ShardLoad struct {
	Shard     int     `json:"shard"`
	Clients   int     `json:"clients"`
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

// leaseMsg is the subset of the daemon's lease response the generator needs.
type leaseMsg struct {
	LeaseID  uint64 `json:"lease_id"`
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	TermMS   int64  `json:"term_ms"`
	Acquires int64  `json:"acquires"`
}

type counters struct {
	ops     atomic.Int64
	errors  atomic.Int64
	acquire atomic.Int64
	renew   atomic.Int64
	release atomic.Int64
	batch   atomic.Int64 // /v1/batch requests (not the ops they carry)

	sheds      atomic.Int64
	retries    atomic.Int64
	lost       atomic.Int64
	deduped    atomic.Int64
	doubles    atomic.Int64
	reconnects atomic.Int64
	redirects  atomic.Int64
}

// Run generates load until opts.Duration elapses or ctx is cancelled, then
// reports what the fleet saw.
func Run(ctx context.Context, opts Options) (Report, error) {
	if opts.Beat <= 0 {
		opts.Beat = 10 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.Retries <= 0 {
		opts.Retries = 4
	}
	total := 0
	for _, n := range opts.Mix {
		total += n
	}
	if total == 0 {
		return Report{}, fmt.Errorf("loadgen: empty client mix")
	}

	// Keep-alive tuned for a fleet hammering one host: every client's
	// connection stays pooled for the whole run instead of competing for
	// net/http's default two idle slots per host.
	var rt http.RoundTripper = &http.Transport{
		MaxIdleConns:        total + 8,
		MaxIdleConnsPerHost: total + 8,
		IdleConnTimeout:     90 * time.Second,
	}
	// Probe the daemon on a clean client — injected chaos must not turn a
	// healthy daemon into a startup failure.
	if err := probe(ctx, &http.Client{Timeout: opts.Timeout}, opts.BaseURL); err != nil {
		return Report{}, err
	}
	if opts.Faults != nil {
		rt = &faultTransport{
			inner: rt,
			drop:  opts.Faults.Site("client.drop"),
			delay: opts.Faults.Site("client.delay"),
		}
	}
	cli := &http.Client{Timeout: opts.Timeout, Transport: rt}

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	var cnt counters
	reports := make([]ClientReport, 0, total)
	var mu sync.Mutex
	var wg sync.WaitGroup
	idx := 0
	for _, p := range []Profile{Normal, LHB, LUB, FAB, Crash} { // stable order
		for i := 0; i < opts.Mix[p]; i++ {
			rng := rand.New(rand.NewSource(opts.Seed + int64(idx)*7919 + 1))
			idx++
			c := &client{
				name:    fmt.Sprintf("%s%s-%d", opts.Prefix, p, i),
				prof:    p,
				http:    cli,
				base:    opts.BaseURL,
				beat:    opts.Beat,
				batch:   opts.Batch,
				cnt:     &cnt,
				retries: opts.Retries,
				bo:      newBackoff(opts.RetryBase, opts.RetryMax, rng),
				shard:   -1,
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep := c.run(runCtx)
				mu.Lock()
				reports = append(reports, rep)
				mu.Unlock()
			}()
		}
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(reports, func(i, j int) bool { return reports[i].Client < reports[j].Client })
	rep := Report{
		Ops:        cnt.ops.Load(),
		Errors:     cnt.errors.Load(),
		DurationMS: elapsed.Milliseconds(),
		ByVerb: map[string]int64{
			"acquire": cnt.acquire.Load(),
			"renew":   cnt.renew.Load(),
			"release": cnt.release.Load(),
			"batch":   cnt.batch.Load(),
		},
		Sheds:          cnt.sheds.Load(),
		Retries:        cnt.retries.Load(),
		LostResponses:  cnt.lost.Load(),
		Deduped:        cnt.deduped.Load(),
		DoubleAcquires: cnt.doubles.Load(),
		Reconnects:     cnt.reconnects.Load(),
		Redirects:      cnt.redirects.Load(),
		Clients:        reports,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Ops) / secs
	}
	// Per-shard throughput: group client ops by the shard their lease landed
	// on. Clients that never acquired (shard -1) are left out.
	byShard := map[int]*ShardLoad{}
	for _, cr := range reports {
		if cr.Shard < 0 {
			continue
		}
		sl := byShard[cr.Shard]
		if sl == nil {
			sl = &ShardLoad{Shard: cr.Shard}
			byShard[cr.Shard] = sl
		}
		sl.Clients++
		sl.Ops += cr.Ops
	}
	for _, sl := range byShard {
		if secs := elapsed.Seconds(); secs > 0 {
			sl.OpsPerSec = float64(sl.Ops) / secs
		}
		rep.PerShard = append(rep.PerShard, *sl)
	}
	sort.Slice(rep.PerShard, func(i, j int) bool { return rep.PerShard[i].Shard < rep.PerShard[j].Shard })
	for _, cr := range reports {
		p := Profile(cr.Profile)
		switch {
		case p.Misbehaving():
			rep.MisbehavingClients++
			if cr.DeferredSeen > 0 {
				rep.MisbehavingDeferred++
			}
		case p == Crash:
			// excluded from the false-positive count by design
		case cr.DeferredSeen > 0:
			rep.NormalDeferred++
		}
	}
	return rep, nil
}

// faultTransport injects client-side network chaos below the retry layer:
// "client.delay" stalls a request in flight, "client.drop" discards the
// daemon's response after the request was fully processed — manufacturing
// the did-it-apply ambiguity that the idempotent retry path must resolve.
type faultTransport struct {
	inner http.RoundTripper
	drop  *faults.Site
	delay *faults.Site
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.delay.Fire() {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(t.delay.Delay()):
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.drop.Fire() {
		resp.Body.Close()
		return nil, fmt.Errorf("faults: response dropped (client.drop)")
	}
	return resp, nil
}

func probe(ctx context.Context, cli *http.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := cli.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: daemon unreachable: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: daemon health check: %s", resp.Status)
	}
	return nil
}

// client is one simulated app.
type client struct {
	name  string
	prof  Profile
	http  *http.Client
	base  string
	beat  time.Duration
	batch int // >1: renews ride /v1/batch in groups of this size
	cnt   *counters

	retries int
	bo      backoff
	seq     int64 // request-ID sequence; one ID per logical op
	intents int64 // acquire ops that reached the wire — the dedup upper bound
	shard   int   // daemon shard from the acquire response; -1 until known

	ops, errs, deferred int64
	sheds, retried, lost, deduped, doubles, recon, redirected int64
}

// send performs one idempotent request with the shared retry ladder. nops
// is how many logical ops the request carries — 1 on the single-op routes,
// the group size on /v1/batch — and scales the op and error accounting.
// onOK consumes a 200 response body. Returns false only when the request
// failed for good (a counted error) or the run ended.
func (c *client) send(ctx context.Context, verb *atomic.Int64, nops int64, method, path, reqID string, payload []byte, onOK func(*http.Response) error) bool {
	c.ops += nops
	c.cnt.ops.Add(nops)
	verb.Add(nops)
	c.bo.reset()
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			c.retried++
			c.cnt.retries.Add(1)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(payload))
		if err != nil {
			break
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		req.Header.Set("X-Request-ID", reqID)
		resp, err := c.http.Do(req)
		var retryAfter time.Duration
		switch {
		case err != nil:
			// Cancellation at the end of the run is not a protocol error.
			if ctx.Err() != nil {
				return false
			}
			// The response is gone but the op may have applied server-side —
			// exactly the ambiguity the request ID resolves on the resend.
			c.lost++
			c.cnt.lost.Add(1)
		case resp.StatusCode == http.StatusOK:
			if resp.Header.Get("X-Deduped") == "1" {
				c.deduped++
				c.cnt.deduped.Add(1)
			}
			oerr := onOK(resp)
			resp.Body.Close()
			if oerr != nil {
				c.errs += nops
				c.cnt.errors.Add(nops)
				return false
			}
			return true
		case resp.StatusCode == http.StatusServiceUnavailable:
			// A shed, not a failure: the daemon asked us to slow down.
			if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil {
				retryAfter = time.Duration(secs) * time.Second
			}
			resp.Body.Close()
			c.sheds++
			c.cnt.sheds.Add(1)
		case resp.StatusCode == http.StatusMisdirectedRequest:
			// Not the leader. The Leader header names where writes go now;
			// re-aim this client and resend the same request ID there — the
			// new primary's replicated dedup cache still recognizes it. No
			// hint means a failover is mid-flight: back off and retry here.
			leader := resp.Header.Get("Leader")
			resp.Body.Close()
			if leader != "" && leader != c.base {
				c.base = leader
				c.redirected++
				c.cnt.redirects.Add(1)
				continue
			}
		case resp.StatusCode >= 500:
			resp.Body.Close()
		default:
			// 4xx: the daemon rejected the op outright; the same bytes
			// cannot succeed on a resend.
			resp.Body.Close()
			c.errs += nops
			c.cnt.errors.Add(nops)
			return false
		}
		t := time.NewTimer(c.bo.next(retryAfter))
		select {
		case <-ctx.Done():
			t.Stop()
			return false
		case <-t.C:
		}
	}
	if ctx.Err() == nil {
		c.errs += nops
		c.cnt.errors.Add(nops)
	}
	return false
}

// mutate performs one idempotent mutation. Every attempt carries the same
// X-Request-ID, so however many times a lost response or a shed forces a
// resend, the daemon applies the op at most once.
func (c *client) mutate(ctx context.Context, verb *atomic.Int64, method, path string, body, out any) bool {
	c.seq++
	reqID := fmt.Sprintf("%s-%d", c.name, c.seq)
	var payload []byte
	if body != nil {
		payload, _ = json.Marshal(body)
	}
	return c.send(ctx, verb, 1, method, path, reqID, payload, func(resp *http.Response) error {
		if out == nil {
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// Wire shapes for /v1/batch.
type batchOpMsg struct {
	Op      string    `json:"op"`
	LeaseID uint64    `json:"lease_id,omitempty"`
	ReqID   string    `json:"req_id,omitempty"`
	Report  *usageMsg `json:"report,omitempty"`
}

type batchResultMsg struct {
	Status  int       `json:"status"`
	Deduped bool      `json:"deduped"`
	Lease   *leaseMsg `json:"lease"`
	Error   string    `json:"error"`
}

// batchRenew sends n renew ops for the held lease as one /v1/batch request.
// Each op carries its own request ID, so a retried batch dedups per op —
// the same at-most-once guarantee the single-op path has, at a fraction of
// the per-op cost.
func (c *client) batchRenew(ctx context.Context, leaseID uint64, rep usageMsg, n int) {
	msg := struct {
		Ops []batchOpMsg `json:"ops"`
	}{Ops: make([]batchOpMsg, n)}
	for i := range msg.Ops {
		c.seq++
		msg.Ops[i] = batchOpMsg{
			Op:      "renew",
			LeaseID: leaseID,
			ReqID:   fmt.Sprintf("%s-%d", c.name, c.seq),
			Report:  &rep,
		}
	}
	payload, _ := json.Marshal(msg)
	var out struct {
		Results []batchResultMsg `json:"results"`
	}
	ok := c.send(ctx, &c.cnt.renew, int64(n), "POST", "/v1/batch", msg.Ops[0].ReqID, payload, func(resp *http.Response) error {
		return json.NewDecoder(resp.Body).Decode(&out)
	})
	if !ok {
		return
	}
	c.cnt.batch.Add(1)
	for i := range out.Results {
		res := &out.Results[i]
		if res.Deduped {
			c.deduped++
			c.cnt.deduped.Add(1)
		}
		if res.Status != http.StatusOK {
			c.errs++
			c.cnt.errors.Add(1)
			continue
		}
		if res.Lease != nil {
			c.note(res.Lease.State)
			c.checkDoubles(res.Lease.Acquires)
		}
	}
}

// checkDoubles cross-checks the server's applied-acquire count against this
// client's own acquire intents. Each intent carries one request ID, so the
// server count exceeding the intent count proves a duplicate application.
func (c *client) checkDoubles(acquires int64) {
	if acquires > c.intents {
		c.doubles++
		c.cnt.doubles.Add(1)
	}
}

type acquireMsg struct {
	Client string `json:"client"`
	Kind   string `json:"kind"`
}

type usageMsg struct {
	CPUMS           float64 `json:"cpu_ms,omitempty"`
	RequestMS       float64 `json:"request_ms,omitempty"`
	FailedRequestMS float64 `json:"failed_request_ms,omitempty"`
	UIUpdates       int     `json:"ui_updates,omitempty"`
	Interactions    int     `json:"interactions,omitempty"`
	Exceptions      int     `json:"exceptions,omitempty"`
}

func (c *client) note(state string) {
	if state == "DEFERRED" {
		c.deferred++
	}
}

// run drives the profile until ctx expires.
func (c *client) run(ctx context.Context) ClientReport {
	var lease leaseMsg
	acquire := func() bool {
		c.intents++
		ok := c.mutate(ctx, &c.cnt.acquire, "POST", "/v1/leases", acquireMsg{Client: c.name, Kind: c.prof.kind()}, &lease)
		if ok {
			c.shard = lease.Shard
			c.note(lease.State)
			c.checkDoubles(lease.Acquires)
		}
		return ok
	}
	renew := func(rep usageMsg) {
		if c.batch > 1 {
			c.batchRenew(ctx, lease.LeaseID, rep, c.batch)
			return
		}
		var got leaseMsg
		if c.mutate(ctx, &c.cnt.renew, "POST", fmt.Sprintf("/v1/leases/%d/renew", lease.LeaseID), rep, &got) {
			c.note(got.State)
			c.checkDoubles(got.Acquires)
		}
	}
	release := func() {
		var got leaseMsg
		if c.mutate(ctx, &c.cnt.release, "DELETE", fmt.Sprintf("/v1/leases/%d", lease.LeaseID), nil, &got) {
			c.note(got.State)
		}
	}
	sleep := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}

	if !acquire() {
		// One retry after a beat: the daemon may still be warming up.
		if !sleep(c.beat) || !acquire() {
			return c.report()
		}
	}
	beatMS := float64(c.beat) / float64(time.Millisecond)
	term := time.Duration(lease.TermMS) * time.Millisecond
	if term <= 0 {
		term = 5 * time.Second
	}

	for ctx.Err() == nil {
		switch c.prof {
		case LHB:
			// Leak: hold silently forever.
			renew(usageMsg{})
			if !sleep(c.beat) {
				break
			}
		case LUB:
			// Retry storm: full-tilt CPU, exceptions, no utility.
			renew(usageMsg{CPUMS: beatMS, Exceptions: 2})
			if !sleep(c.beat) {
				break
			}
		case FAB:
			// Weak-GPS search: nearly all request time, nearly all failed.
			renew(usageMsg{RequestMS: beatMS * 0.95, FailedRequestMS: beatMS * 0.9})
			if !sleep(c.beat) {
				break
			}
		case Normal:
			// Work burst for ~30% of a term, with real reported utility,
			// then release and rest. Held fraction stays below the LHB
			// threshold and the work keeps the utility score healthy.
			hold := term * 3 / 10
			if hold < c.beat {
				hold = c.beat
			}
			end := time.Now().Add(hold)
			for ctx.Err() == nil && time.Now().Before(end) {
				renew(usageMsg{CPUMS: beatMS * 0.6, UIUpdates: 1, Interactions: 1})
				if !sleep(c.beat) {
					break
				}
			}
			release()
			if !sleep(term - hold) {
				break
			}
			acquire()
		case Crash:
			// Behave for ~a third of a term, then die without releasing
			// (a process kill), stay dark for about a term, and reconnect
			// under the same name: the daemon must recognize the name,
			// reuse the UID, and carry reputation across the gap.
			hold := term * 3 / 10
			if hold < c.beat {
				hold = c.beat
			}
			end := time.Now().Add(hold)
			for ctx.Err() == nil && time.Now().Before(end) {
				renew(usageMsg{CPUMS: beatMS * 0.6, UIUpdates: 1, Interactions: 1})
				if !sleep(c.beat) {
					break
				}
			}
			if !sleep(term) { // dark: no release, no renews
				break
			}
			if acquire() {
				c.recon++
				c.cnt.reconnects.Add(1)
			}
		}
	}
	return c.report()
}

func (c *client) report() ClientReport {
	return ClientReport{
		Client:         c.name,
		Profile:        string(c.prof),
		Shard:          c.shard,
		Ops:            c.ops,
		Errors:         c.errs,
		DeferredSeen:   c.deferred,
		Sheds:          c.sheds,
		Retries:        c.retried,
		LostResponses:  c.lost,
		Deduped:        c.deduped,
		DoubleAcquires: c.doubles,
		Reconnects:     c.recon,
		Redirects:      c.redirected,
	}
}
