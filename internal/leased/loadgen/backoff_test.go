package loadgen

import (
	"math/rand"
	"testing"
	"time"
)

func TestBackoffBoundsAndGrowth(t *testing.T) {
	b := newBackoff(10*time.Millisecond, 160*time.Millisecond, rand.New(rand.NewSource(1)))
	for attempt := 0; attempt < 20; attempt++ {
		ceil := 10 * time.Millisecond << attempt
		if ceil <= 0 || ceil > 160*time.Millisecond {
			ceil = 160 * time.Millisecond
		}
		d := b.next(0)
		if d <= 0 || d > ceil {
			t.Fatalf("attempt %d: pause %v outside (0, %v]", attempt, d, ceil)
		}
	}
	b.reset()
	if d := b.next(0); d > 10*time.Millisecond {
		t.Fatalf("after reset: pause %v exceeds base ceiling", d)
	}
}

func TestBackoffHonorsRetryAfter(t *testing.T) {
	b := newBackoff(time.Millisecond, 50*time.Millisecond, rand.New(rand.NewSource(1)))
	if d := b.next(30 * time.Millisecond); d < 30*time.Millisecond {
		t.Fatalf("pause %v shorter than the Retry-After hint", d)
	}
	// ...but never beyond max, even when the hint asks for more.
	if d := b.next(time.Minute); d != 50*time.Millisecond {
		t.Fatalf("pause %v, want clamp to max 50ms", d)
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	a := newBackoff(5*time.Millisecond, time.Second, rand.New(rand.NewSource(42)))
	b := newBackoff(5*time.Millisecond, time.Second, rand.New(rand.NewSource(42)))
	for i := 0; i < 10; i++ {
		if da, db := a.next(0), b.next(0); da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, db)
		}
	}
}
