package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/lease"
	"repro/internal/leased"
)

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("normal=4, lhb=2,fab=1,lub=0,crash=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix[Normal] != 4 || mix[LHB] != 2 || mix[FAB] != 1 || mix[LUB] != 0 || mix[Crash] != 1 {
		t.Fatalf("mix = %v", mix)
	}
	for _, bad := range []string{"normal", "weird=1", "lhb=x", "lhb=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestEndToEndDetection runs the full loop: a live daemon with short terms,
// a mixed fleet, and the assertion the whole subsystem exists for — every
// misbehaving client is deferred, no well-behaved client is.
func TestEndToEndDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	srv := leased.NewServer(leased.Options{
		Lease: lease.Config{
			Term:              60 * time.Millisecond,
			Tau:               120 * time.Millisecond,
			TauMax:            480 * time.Millisecond,
			MisbehaviorWindow: 1,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rep, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Mix:      map[Profile]int{Normal: 2, LHB: 2, LUB: 2, FAB: 2},
		Duration: 3 * time.Second,
		Beat:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MisbehavingClients != 6 {
		t.Fatalf("misbehaving clients = %d, want 6", rep.MisbehavingClients)
	}
	if rep.MisbehavingDeferred != rep.MisbehavingClients {
		t.Errorf("only %d/%d misbehaving clients were deferred: %+v",
			rep.MisbehavingDeferred, rep.MisbehavingClients, rep.Clients)
	}
	if rep.NormalDeferred != 0 {
		t.Errorf("%d well-behaved clients were wrongly deferred: %+v", rep.NormalDeferred, rep.Clients)
	}
	if rep.Errors != 0 {
		t.Errorf("fleet saw %d request errors", rep.Errors)
	}
	if rep.Ops < 500 {
		t.Errorf("fleet only managed %d ops in 3s", rep.Ops)
	}
}

// TestSelfHealingUnderChaos drops responses on BOTH sides of the wire — the
// daemon aborts connections after applying ops, the client transport discards
// responses after the daemon processed them — and asserts the retry+dedup
// loop turns every loss into availability cost only: lost responses are
// observed and retried, retries are answered from the idempotency cache, and
// the server never applies an acquire twice.
func TestSelfHealingUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	srvFaults := faults.New(7)
	if err := srvFaults.Configure("http.drop=0.05,http.error=0.05::503"); err != nil {
		t.Fatal(err)
	}
	srv := leased.NewServer(leased.Options{
		Lease: lease.Config{
			Term:              60 * time.Millisecond,
			Tau:               120 * time.Millisecond,
			TauMax:            480 * time.Millisecond,
			MisbehaviorWindow: 1,
		},
		Faults: srvFaults,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	cliFaults := faults.New(11)
	if err := cliFaults.Configure("client.drop=0.05"); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Mix:      map[Profile]int{Normal: 2, Crash: 1},
		Duration: 2 * time.Second,
		Beat:     10 * time.Millisecond,
		Retries:  6,
		Seed:     3,
		Faults:   cliFaults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DoubleAcquires != 0 {
		t.Fatalf("%d double-applied acquires under chaos: %+v", rep.DoubleAcquires, rep.Clients)
	}
	if rep.LostResponses == 0 {
		t.Error("chaos injected but no lost responses observed; test exercised nothing")
	}
	if rep.Sheds == 0 {
		t.Error("injected 503s but no sheds recorded")
	}
	if rep.Retries == 0 {
		t.Error("losses observed but nothing was retried")
	}
	if rep.Deduped == 0 {
		t.Error("responses were dropped post-apply but no retry hit the dedup cache")
	}
	if rep.Errors > rep.Ops/20 {
		t.Errorf("self-healing leaked %d errors out of %d ops", rep.Errors, rep.Ops)
	}
}

// TestCrashProfileReconnects checks the crash profile against a healthy
// daemon: the client must come back under the same name and the daemon must
// hand the lease back (same underlying object, acquire count climbing).
func TestCrashProfileReconnects(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	srv := leased.NewServer(leased.Options{
		Lease: lease.Config{
			Term:              60 * time.Millisecond,
			Tau:               120 * time.Millisecond,
			TauMax:            480 * time.Millisecond,
			MisbehaviorWindow: 1,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rep, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Mix:      map[Profile]int{Crash: 2},
		Duration: 2 * time.Second,
		Beat:     10 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reconnects == 0 {
		t.Fatalf("crash clients never reconnected: %+v", rep.Clients)
	}
	if rep.DoubleAcquires != 0 {
		t.Fatalf("%d double acquires on reconnect", rep.DoubleAcquires)
	}
	if rep.Errors != 0 {
		t.Errorf("healthy daemon, but fleet saw %d errors: %+v", rep.Errors, rep.Clients)
	}
}

// TestBatchModeEndToEnd runs the fleet in batch mode: renews ride /v1/batch
// in groups, with per-op request IDs. Detection must still work (batched
// zero-usage heartbeats are still a leak), nothing may error, and the op
// count must reflect the batched ops.
func TestBatchModeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	srv := leased.NewServer(leased.Options{
		Lease: lease.Config{
			Term:              60 * time.Millisecond,
			Tau:               120 * time.Millisecond,
			TauMax:            480 * time.Millisecond,
			MisbehaviorWindow: 1,
		},
		Shards: 2,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rep, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Mix:      map[Profile]int{Normal: 2, LHB: 2},
		Duration: 2 * time.Second,
		Beat:     10 * time.Millisecond,
		Batch:    16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("batch-mode fleet saw %d errors: %+v", rep.Errors, rep.Clients)
	}
	if rep.MisbehavingDeferred != rep.MisbehavingClients {
		t.Errorf("only %d/%d misbehaving clients deferred in batch mode",
			rep.MisbehavingDeferred, rep.MisbehavingClients)
	}
	if rep.NormalDeferred != 0 {
		t.Errorf("%d well-behaved clients wrongly deferred in batch mode", rep.NormalDeferred)
	}
	if rep.ByVerb["batch"] == 0 {
		t.Error("batch mode sent no /v1/batch requests")
	}
	// Each batch request carries 16 renews; logical ops must dwarf requests.
	if rep.ByVerb["renew"] < rep.ByVerb["batch"]*16 {
		t.Errorf("renew ops %d < 16× batch requests %d", rep.ByVerb["renew"], rep.ByVerb["batch"])
	}
	if rep.DoubleAcquires != 0 {
		t.Fatalf("%d double acquires in batch mode", rep.DoubleAcquires)
	}
}
