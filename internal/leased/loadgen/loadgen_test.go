package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/lease"
	"repro/internal/leased"
)

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("normal=4, lhb=2,fab=1,lub=0")
	if err != nil {
		t.Fatal(err)
	}
	if mix[Normal] != 4 || mix[LHB] != 2 || mix[FAB] != 1 || mix[LUB] != 0 {
		t.Fatalf("mix = %v", mix)
	}
	for _, bad := range []string{"normal", "weird=1", "lhb=x", "lhb=-1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestEndToEndDetection runs the full loop: a live daemon with short terms,
// a mixed fleet, and the assertion the whole subsystem exists for — every
// misbehaving client is deferred, no well-behaved client is.
func TestEndToEndDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	srv := leased.NewServer(leased.Options{
		Lease: lease.Config{
			Term:              60 * time.Millisecond,
			Tau:               120 * time.Millisecond,
			TauMax:            480 * time.Millisecond,
			MisbehaviorWindow: 1,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rep, err := Run(context.Background(), Options{
		BaseURL:  ts.URL,
		Mix:      map[Profile]int{Normal: 2, LHB: 2, LUB: 2, FAB: 2},
		Duration: 3 * time.Second,
		Beat:     10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MisbehavingClients != 6 {
		t.Fatalf("misbehaving clients = %d, want 6", rep.MisbehavingClients)
	}
	if rep.MisbehavingDeferred != rep.MisbehavingClients {
		t.Errorf("only %d/%d misbehaving clients were deferred: %+v",
			rep.MisbehavingDeferred, rep.MisbehavingClients, rep.Clients)
	}
	if rep.NormalDeferred != 0 {
		t.Errorf("%d well-behaved clients were wrongly deferred: %+v", rep.NormalDeferred, rep.Clients)
	}
	if rep.Errors != 0 {
		t.Errorf("fleet saw %d request errors", rep.Errors)
	}
	if rep.Ops < 500 {
		t.Errorf("fleet only managed %d ops in 3s", rep.Ops)
	}
}
