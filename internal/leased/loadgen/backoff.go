package loadgen

import (
	"math/rand"
	"time"
)

// backoff paces retries: exponential growth with full jitter, bounded by
// max, and never shorter than the server's Retry-After hint. Full jitter
// (uniform in (0, 2^n·base]) is what keeps a fleet of clients that all lost
// the same daemon from stampeding it in lockstep when it returns.
type backoff struct {
	base, max time.Duration
	rng       *rand.Rand
	attempt   int
}

func newBackoff(base, max time.Duration, rng *rand.Rand) backoff {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	return backoff{base: base, max: max, rng: rng}
}

func (b *backoff) reset() { b.attempt = 0 }

// next returns the pause before the following retry. retryAfter is the
// server's Retry-After hint (zero if absent); the pause is at least that,
// because a shed server said exactly when it wants to hear from us again.
func (b *backoff) next(retryAfter time.Duration) time.Duration {
	ceil := b.base << b.attempt
	if ceil <= 0 || ceil > b.max {
		ceil = b.max
	}
	b.attempt++
	d := time.Duration(b.rng.Int63n(int64(ceil))) + 1
	if retryAfter > d {
		d = retryAfter
	}
	if d > b.max {
		d = b.max
	}
	return d
}
