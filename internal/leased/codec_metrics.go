package leased

// Hand-rolled encoder for the GET /metrics document, byte-identical to
// json.MarshalIndent(snap, "", "  ") — which is what the route emitted
// before the codec work, and what the chaos scripts and chaosverify parse.
// The equivalence is enforced by TestMetricsEncoderMatchesStdlib across
// populated, empty and nil-field snapshots; any change to the Snapshot
// struct must keep the two in lockstep.

import (
	"sort"
	"strconv"

	"repro/internal/faults"
)

// ienc builds indented JSON the way encoding/json's indenter lays it out:
// two-space indent, "key": value on one line, empty composites as {} / [].
type ienc struct {
	b     []byte
	depth int
}

func (e *ienc) indent() {
	for i := 0; i < e.depth; i++ {
		e.b = append(e.b, ' ', ' ')
	}
}

func (e *ienc) open(c byte) {
	e.b = append(e.b, c)
	e.depth++
}

// close ends an object/array: empty composites close on the same line.
func (e *ienc) close(c byte, empty bool) {
	e.depth--
	if !empty {
		e.b = append(e.b, '\n')
		e.indent()
	}
	e.b = append(e.b, c)
}

// key starts the next "name": entry, handling comma/newline/indent.
func (e *ienc) key(first *bool, name string) {
	if *first {
		*first = false
	} else {
		e.b = append(e.b, ',')
	}
	e.b = append(e.b, '\n')
	e.indent()
	e.b = appendJSONString(e.b, name)
	e.b = append(e.b, ':', ' ')
}

// elem starts the next array element.
func (e *ienc) elem(first *bool) {
	if *first {
		*first = false
	} else {
		e.b = append(e.b, ',')
	}
	e.b = append(e.b, '\n')
	e.indent()
}

func (e *ienc) intKey(first *bool, name string, v int64) {
	e.key(first, name)
	e.b = strconv.AppendInt(e.b, v, 10)
}

func (e *ienc) uintKey(first *bool, name string, v uint64) {
	e.key(first, name)
	e.b = strconv.AppendUint(e.b, v, 10)
}

func (e *ienc) floatKey(first *bool, name string, v float64) {
	e.key(first, name)
	e.b = appendJSONFloat(e.b, v)
}

func (e *ienc) boolKey(first *bool, name string, v bool) {
	e.key(first, name)
	e.b = strconv.AppendBool(e.b, v)
}

func (e *ienc) strKey(first *bool, name, v string) {
	e.key(first, name)
	e.b = appendJSONString(e.b, v)
}

// appendSnapshotIndent renders the full metrics document.
func appendSnapshotIndent(b []byte, snap *Snapshot) []byte {
	e := ienc{b: b}
	first := true
	e.open('{')
	e.intKey(&first, "uptime_ms", snap.UptimeMS)
	e.intKey(&first, "shards", int64(snap.Shards))
	e.intKey(&first, "clients", int64(snap.Clients))
	e.key(&first, "leases")
	e.leaseCounts(&snap.Leases)
	e.key(&first, "manager")
	e.managerCounters(&snap.Manager)
	e.key(&first, "defaulters")
	e.defaulterList(snap.Defaulters)
	e.key(&first, "requests")
	e.requests(snap.Requests)
	e.intKey(&first, "inflight_rejections", snap.InflightRejections)
	e.intKey(&first, "max_inflight", int64(snap.MaxInflight))
	e.intKey(&first, "deduped", snap.Deduped)
	if snap.Durability != nil {
		e.key(&first, "durability")
		e.durability(snap.Durability)
	}
	if snap.Recovery != nil {
		e.key(&first, "recovery")
		e.recoveryInfo(snap.Recovery)
	}
	if snap.Cluster != nil {
		e.key(&first, "cluster")
		e.clusterStatus(snap.Cluster)
	}
	if len(snap.Faults) > 0 {
		e.key(&first, "faults")
		e.faultMap(snap.Faults)
	}
	if len(snap.PerShard) > 0 {
		e.key(&first, "per_shard")
		afirst := true
		e.open('[')
		for i := range snap.PerShard {
			e.elem(&afirst)
			e.shardSnapshot(&snap.PerShard[i])
		}
		e.close(']', afirst)
	}
	e.close('}', first)
	return e.b
}

func (e *ienc) leaseCounts(c *LeaseCounts) {
	first := true
	e.open('{')
	e.intKey(&first, "active", int64(c.Active))
	e.intKey(&first, "inactive", int64(c.Inactive))
	e.intKey(&first, "deferred", int64(c.Deferred))
	e.intKey(&first, "live", int64(c.Live))
	e.intKey(&first, "created_total", int64(c.CreatedTotal))
	e.intKey(&first, "dead", int64(c.Dead))
	e.close('}', first)
}

func (e *ienc) managerCounters(c *ManagerCounters) {
	first := true
	e.open('{')
	e.intKey(&first, "term_checks", int64(c.TermChecks))
	e.intKey(&first, "renewals", int64(c.Renewals))
	e.intKey(&first, "deferrals", int64(c.Deferrals))
	e.intKey(&first, "term_adaptations", int64(c.TermAdaptations))
	e.close('}', first)
}

// defaulterList renders a no-omitempty slice: nil is null (as encoding/json
// renders nil slices), empty-but-allocated is [].
func (e *ienc) defaulterList(ds []Defaulter) {
	if ds == nil {
		e.b = append(e.b, "null"...)
		return
	}
	first := true
	e.open('[')
	for i := range ds {
		e.elem(&first)
		e.defaulter(&ds[i])
	}
	e.close(']', first)
}

func (e *ienc) defaulter(d *Defaulter) {
	first := true
	e.open('{')
	e.strKey(&first, "client", d.Client)
	e.intKey(&first, "uid", int64(d.UID))
	e.intKey(&first, "shard", int64(d.Shard))
	e.intKey(&first, "deferrals", int64(d.Deferrals))
	e.intKey(&first, "normal_terms", int64(d.NormalTerms))
	if d.State != "" {
		e.strKey(&first, "state", d.State)
	}
	e.close('}', first)
}

func (e *ienc) requests(m map[string]RouteStats) {
	if m == nil {
		e.b = append(e.b, "null"...)
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	first := true
	e.open('{')
	for _, k := range keys {
		e.key(&first, k)
		rs := m[k]
		e.routeStats(&rs)
	}
	e.close('}', first)
}

func (e *ienc) routeStats(rs *RouteStats) {
	first := true
	e.open('{')
	e.intKey(&first, "count", rs.Count)
	e.intKey(&first, "errors", rs.Errors)
	e.floatKey(&first, "mean_ms", rs.MeanMS)
	e.floatKey(&first, "max_ms", rs.MaxMS)
	e.key(&first, "latency_ms")
	pfirst := true
	e.open('{')
	e.floatKey(&pfirst, "p50", rs.LatencyMS.P50)
	e.floatKey(&pfirst, "p90", rs.LatencyMS.P90)
	e.floatKey(&pfirst, "p99", rs.LatencyMS.P99)
	e.close('}', pfirst)
	e.close('}', first)
}

func (e *ienc) durability(d *DurabilityStats) {
	first := true
	e.open('{')
	// durable.Stats is embedded, so its fields inline first.
	e.uintKey(&first, "epoch", d.Epoch)
	e.intKey(&first, "appended_total", d.AppendedTotal)
	e.intKey(&first, "since_snapshot", int64(d.SinceSnapshot))
	e.intKey(&first, "snapshots_total", d.SnapshotsTotal)
	e.intKey(&first, "stale_records", int64(d.StaleRecords))
	e.intKey(&first, "truncated_bytes", d.TruncatedBytes)
	e.intKey(&first, "dir_sync_errors", d.DirSyncErrors)
	e.intKey(&first, "snapshot_every", int64(d.SnapshotEvery))
	e.boolKey(&first, "fsync", d.Fsync)
	e.intKey(&first, "journal_errors", d.JournalErrors)
	e.intKey(&first, "checkpoints", d.Checkpoints)
	e.intKey(&first, "dedup_entries", int64(d.DedupEntries))
	e.close('}', first)
}

func (e *ienc) recoveryInfo(r *RecoveryInfo) {
	first := true
	e.open('{')
	e.boolKey(&first, "snapshot_loaded", r.SnapshotLoaded)
	e.intKey(&first, "snapshot_now", int64(r.SnapshotNow))
	e.intKey(&first, "replayed", int64(r.Replayed))
	e.intKey(&first, "truncated_bytes", r.TruncatedBytes)
	e.intKey(&first, "stale_records", int64(r.StaleRecords))
	e.close('}', first)
}

func (e *ienc) clusterStatus(c *ClusterStatus) {
	first := true
	e.open('{')
	e.strKey(&first, "role", c.Role)
	e.uintKey(&first, "cluster_epoch", c.ClusterEpoch)
	if c.NodeID != "" {
		e.strKey(&first, "node_id", c.NodeID)
	}
	e.boolKey(&first, "writable", c.Writable)
	if c.Leader != "" {
		e.strKey(&first, "leader", c.Leader)
	}
	if len(c.Followers) > 0 {
		e.key(&first, "followers")
		afirst := true
		e.open('[')
		for i := range c.Followers {
			e.elem(&afirst)
			e.followerReplica(&c.Followers[i])
		}
		e.close(']', afirst)
	}
	if c.Replication != nil {
		e.key(&first, "replication")
		e.replicationStatus(c.Replication)
	}
	e.close('}', first)
}

func (e *ienc) followerReplica(f *FollowerReplica) {
	first := true
	e.open('{')
	e.strKey(&first, "addr", f.Addr)
	if f.Node != "" {
		e.strKey(&first, "node", f.Node)
	}
	e.intKey(&first, "shard", int64(f.Shard))
	e.intKey(&first, "sent_seq", f.SentSeq)
	e.intKey(&first, "acked_seq", f.AckedSeq)
	e.intKey(&first, "lag_records", f.LagRecords)
	e.intKey(&first, "last_ack_ms", f.LastAckMS)
	e.close('}', first)
}

func (e *ienc) replicationStatus(r *ReplicationStatus) {
	first := true
	e.open('{')
	e.strKey(&first, "primary", r.Primary)
	e.intKey(&first, "connected", int64(r.Connected))
	e.intKey(&first, "shards", int64(r.Shards))
	e.intKey(&first, "applied_seq", r.AppliedSeq)
	e.intKey(&first, "source_seq", r.SourceSeq)
	e.intKey(&first, "lag_records", r.LagRecords)
	e.intKey(&first, "snapshots_applied", r.SnapshotsApplied)
	e.intKey(&first, "records_applied", r.RecordsApplied)
	e.intKey(&first, "last_heard_ms", r.LastHeardMS)
	e.boolKey(&first, "suspect", r.Suspect)
	e.close('}', first)
}

func (e *ienc) faultMap(m map[string]faults.SiteStats) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	first := true
	e.open('{')
	for _, k := range keys {
		e.key(&first, k)
		st := m[k]
		sfirst := true
		e.open('{')
		e.floatKey(&sfirst, "prob", st.Prob)
		if st.DelayMS != 0 {
			e.floatKey(&sfirst, "delay_ms", st.DelayMS)
		}
		if st.Code != 0 {
			e.intKey(&sfirst, "code", int64(st.Code))
		}
		e.intKey(&sfirst, "hits", st.Hits)
		e.intKey(&sfirst, "fires", st.Fires)
		e.close('}', sfirst)
	}
	e.close('}', first)
}

func (e *ienc) shardSnapshot(s *ShardSnapshot) {
	first := true
	e.open('{')
	e.intKey(&first, "shard", int64(s.Shard))
	e.intKey(&first, "clients", int64(s.Clients))
	e.key(&first, "leases")
	e.leaseCounts(&s.Leases)
	e.key(&first, "manager")
	e.managerCounters(&s.Manager)
	if len(s.Defaulters) > 0 {
		e.key(&first, "defaulters")
		afirst := true
		e.open('[')
		for i := range s.Defaulters {
			e.elem(&afirst)
			e.defaulter(&s.Defaulters[i])
		}
		e.close(']', afirst)
	}
	e.key(&first, "requests")
	e.requests(s.Requests)
	e.intKey(&first, "deduped", s.Deduped)
	if s.Durability != nil {
		e.key(&first, "durability")
		e.durability(s.Durability)
	}
	if s.Recovery != nil {
		e.key(&first, "recovery")
		e.recoveryInfo(s.Recovery)
	}
	e.close('}', first)
}
