package leased

// Replication tests: a primary and a follower in one process, wired over
// real TCP. The invariant under test is the same one the crash-recovery
// suite pins — replayed state is byte-equal to the source state at a mark
// instant — extended across the wire, plus the failover machinery around
// it: role gating, epoch fencing, and promotion.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
)

// clusterRig is a 2-node cluster: a durable primary serving replication on
// ln, and a durable follower replicating from it. Both expose their HTTP
// surface through httptest servers (prim.ts / fol.ts).
type clusterRig struct {
	t    *testing.T
	prim *durableRig
	ln   net.Listener // primary's replication listener
	fol  *durableRig
	fln  net.Listener // follower's replication listener (used after promotion)
}

func newClusterRig(t *testing.T, shards int) *clusterRig {
	t.Helper()
	popts := testOptions()
	popts.Shards = shards
	popts.Cluster = &ClusterConfig{Role: "primary", Advertise: "http://primary.invalid"}
	prim := newDurableRig(t, t.TempDir(), popts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	prim.s.ServeReplication(ln)

	fopts := testOptions()
	fopts.Shards = shards
	fopts.Cluster = &ClusterConfig{Role: "follower", PrimaryAddr: ln.Addr().String(), Advertise: "http://follower.invalid"}
	fol := newDurableRig(t, t.TempDir(), fopts)
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fol.s.ServeReplication(fln)
	if err := fol.s.StartFollowing(); err != nil {
		t.Fatal(err)
	}
	return &clusterRig{t: t, prim: prim, ln: ln, fol: fol, fln: fln}
}

// waitSynced blocks until every shard stream is connected and the follower
// has applied everything the primary has published. Call it only while the
// primary is quiesced (no concurrent writers), or the target moves.
func (c *clusterRig) waitSynced() {
	c.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := c.fol.s.replicaStats()
		var src int64
		for i := range c.prim.s.shards {
			src += c.prim.s.prim.Stream(i).Seq()
		}
		if ok && st.Connected == len(c.prim.s.shards) && st.AppliedSeq >= src && st.Lag() == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, _ := c.fol.s.replicaStats()
	c.t.Fatalf("follower never caught up: %+v", st)
}

// captureShards captures every shard's state at its current (frozen)
// instant, without journaling anything — the follower-side twin of
// markAndCapture, whose mark record the follower has already applied.
func captureShards(s *Server) []persistedState {
	out := make([]persistedState, len(s.shards))
	for i, sh := range s.shards {
		i, sh := i, sh
		sh.do(func() { out[i] = sh.captureState() })
	}
	return out
}

// TestFollowerMirrorsPrimary drives mixed traffic — acquires and renews
// across shards, an atomic batch, a deduped retry — through the primary and
// checks the follower's replayed state is DeepEqual to the primary's at the
// mark instant, shard by shard.
func TestFollowerMirrorsPrimary(t *testing.T) {
	c := newClusterRig(t, 2)
	defer c.fol.s.Close()

	// Enough clients to hit both shards.
	leases := make(map[string]uint64)
	hit := map[int]bool{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("mirror-%d", i)
		leases[name] = c.prim.acquire(name, "wakelock").LeaseID
		hit[shardIndex(name, 2)] = true
	}
	if len(hit) != 2 {
		t.Fatalf("client names cover %d of 2 shards; rename them", len(hit))
	}
	for name, id := range leases {
		c.prim.renew(id, usageReport{CPUMS: 2, UIUpdates: 1})
		_ = name
	}

	// An atomic batch: three renews of one client land on one shard as a
	// single group, so the stream carries a real batch frame.
	var batchOut struct {
		Results []json.RawMessage `json:"results"`
	}
	ops := []map[string]any{}
	for i := 0; i < 3; i++ {
		ops = append(ops, map[string]any{"op": "renew", "lease_id": leases["mirror-0"], "report": map[string]any{"cpu_ms": 1}})
	}
	ops = append(ops, map[string]any{"op": "renew", "lease_id": leases["mirror-1"], "report": map[string]any{"cpu_ms": 1}})
	if code := c.prim.call("POST", "/v1/batch", map[string]any{"ops": ops}, &batchOut); code != 200 || len(batchOut.Results) != 4 {
		t.Fatalf("batch: code %d results %d", code, len(batchOut.Results))
	}

	// A deduped retry, so the follower must rebuild the dedup cache too.
	for i := 0; i < 2; i++ {
		req, _ := newJSONRequest("POST", c.prim.ts.URL+"/v1/leases", acquireRequest{Client: "mirror-0", Kind: "wakelock"})
		req.Header.Set("X-Request-ID", "mirror-dedup-1")
		resp, err := c.prim.cli.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	pre := markAndCapture(c.prim.s)
	c.waitSynced()
	post := captureShards(c.fol.s)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("follower state differs from primary at the mark:\n pre: %+v\npost: %+v", pre, post)
	}

	// Both sides report the replication in /metrics.
	psnap := c.prim.s.snapshot()
	if psnap.Cluster == nil || psnap.Cluster.Role != "primary" {
		t.Fatalf("primary metrics cluster section: %+v", psnap.Cluster)
	}
	if len(psnap.Cluster.Followers) != 2 {
		t.Fatalf("primary reports %d follower streams, want 2 (one per shard)", len(psnap.Cluster.Followers))
	}
	fsnap := c.fol.s.snapshot()
	if fsnap.Cluster == nil || fsnap.Cluster.Role != "follower" || fsnap.Cluster.Replication == nil {
		t.Fatalf("follower metrics cluster section: %+v", fsnap.Cluster)
	}
	if r := fsnap.Cluster.Replication; r.Connected != 2 || r.LagRecords != 0 || r.RecordsApplied == 0 {
		t.Fatalf("follower replication status: %+v", r)
	}
}

// TestFollowerRejectsWrites pins the role gate: mutations on a follower
// answer 421 with the Leader hint, reads stay open, and /healthz reports
// the follower's sync state.
func TestFollowerRejectsWrites(t *testing.T) {
	c := newClusterRig(t, 1)
	defer c.fol.s.Close()

	id := c.prim.acquire("gate-client", "wakelock").LeaseID
	c.waitSynced()

	req, _ := newJSONRequest("POST", c.fol.ts.URL+"/v1/leases", acquireRequest{Client: "gate-client", Kind: "gps"})
	resp, err := c.fol.cli.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("acquire on follower: status %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get("Leader"); got != "http://primary.invalid" {
		t.Fatalf("Leader hint %q, want the primary's advertise URL", got)
	}
	if code := c.fol.call("POST", fmt.Sprintf("/v1/leases/%d/renew", id), usageReport{CPUMS: 1}, nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("renew on follower: status %d, want 421", code)
	}
	if code := c.fol.call("DELETE", fmt.Sprintf("/v1/leases/%d", id), nil, nil); code != http.StatusMisdirectedRequest {
		t.Fatalf("release on follower: status %d, want 421", code)
	}

	// Reads are open: the follower answers lease state and metrics.
	var lr leaseResponse
	if code := c.fol.call("GET", fmt.Sprintf("/v1/leases/%d", id), nil, &lr); code != 200 {
		t.Fatalf("read on follower: status %d, want 200", code)
	}

	var hz map[string]any
	if code := c.fol.call("GET", "/healthz", nil, &hz); code != 200 {
		t.Fatalf("healthz on follower: status %d", code)
	}
	if hz["ok"] != true || hz["role"] != "follower" {
		t.Fatalf("follower healthz: %v", hz)
	}
	if hz["connected"] != float64(1) || hz["shards"] != float64(1) || hz["lag_records"] != float64(0) {
		t.Fatalf("follower healthz sync fields: %v", hz)
	}
	hz = nil
	if code := c.prim.call("GET", "/healthz", nil, &hz); code != 200 {
		t.Fatalf("healthz on primary: status %d", code)
	}
	if hz["role"] != "primary" || hz["cluster_epoch"] != float64(0) {
		t.Fatalf("primary healthz: %v", hz)
	}
	if _, has := hz["connected"]; has {
		t.Fatalf("primary healthz reports follower sync fields: %v", hz)
	}
}

// TestClusterFailoverPreservesState is the crash-equality check: kill the
// primary mid-stream (no final checkpoint), verify the follower holds the
// exact pre-kill state, then promote it and verify the new generation —
// epoch bumped, durable epochs jumped into the new band, writes open, the
// defaulter verdicts intact.
func TestClusterFailoverPreservesState(t *testing.T) {
	c := newClusterRig(t, 2)
	defer c.fol.s.Close()

	driveDefaulter(c.prim.rig)
	req, _ := newJSONRequest("POST", c.prim.ts.URL+"/v1/leases", acquireRequest{Client: "worker", Kind: "gps"})
	req.Header.Set("X-Request-ID", "failover-dedup-1")
	if resp, err := c.prim.cli.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	pre := markAndCapture(c.prim.s)
	c.waitSynced()
	c.prim.crash() // SIGKILL equivalent: no final checkpoint, conns die

	// Capture BEFORE promoting: promotion binds the walls to real time and
	// pending term checks then fire nondeterministically. At this instant the
	// follower is a frozen replica of the primary at the mark.
	post := captureShards(c.fol.s)
	if !reflect.DeepEqual(pre, post) {
		t.Fatalf("follower state differs from dead primary's last mark:\n pre: %+v\npost: %+v", pre, post)
	}

	epoch, promoted := c.fol.s.Promote()
	if !promoted || epoch != 1 {
		t.Fatalf("Promote = (%d, %v), want (1, true)", epoch, promoted)
	}
	if e2, p2 := c.fol.s.Promote(); p2 || e2 != 1 {
		t.Fatalf("second Promote = (%d, %v), want idempotent (1, false)", e2, p2)
	}
	if c.fol.s.Role() != "primary" || c.fol.s.ClusterEpoch() != 1 {
		t.Fatalf("promoted node: role %s epoch %d", c.fol.s.Role(), c.fol.s.ClusterEpoch())
	}

	// The promotion's checkpoints jumped into the new epoch band, so any
	// stale ex-primary journal (bands below) is fenced on its next recovery.
	for i, sh := range c.fol.s.shards {
		sh := sh
		var depoch uint64
		sh.do(func() { depoch = sh.store.Epoch() })
		if depoch < durable.EpochBand {
			t.Fatalf("shard %d durable epoch %d below band floor %d after promote", i, depoch, uint64(durable.EpochBand))
		}
	}

	// Writes open on the new primary, and the old generation's judgment
	// survived: torch is still a defaulter with its deferrals on record.
	if lr := c.fol.acquire("post-failover", "wakelock"); lr.LeaseID == 0 {
		t.Fatal("acquire on promoted primary returned lease 0")
	}
	snap := c.fol.s.snapshot()
	var torch *Defaulter
	for i := range snap.Defaulters {
		if snap.Defaulters[i].Client == "torch" {
			torch = &snap.Defaulters[i]
		}
	}
	if torch == nil || torch.Deferrals == 0 {
		t.Fatalf("torch's defaulter record lost across failover: %+v", snap.Defaulters)
	}

	var hz map[string]any
	if code := c.fol.call("GET", "/healthz", nil, &hz); code != 200 || hz["role"] != "primary" || hz["cluster_epoch"] != float64(1) {
		t.Fatalf("promoted healthz: code %d body %v", code, hz)
	}
}

// TestStalePrimaryFencedByHandshake: a primary that hears a Hello from a
// later leadership generation must fence itself — refuse the connection
// with a leader hint, answer writes with 421, and promote past the epoch it
// was deposed by.
func TestStalePrimaryFencedByHandshake(t *testing.T) {
	popts := testOptions()
	popts.Cluster = &ClusterConfig{Role: "primary", Advertise: "http://primary.invalid"}
	d := newDurableRig(t, t.TempDir(), popts)
	defer d.s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d.s.ServeReplication(ln)
	d.acquire("pre-fence", "wakelock")

	// Hand-rolled handshake claiming cluster epoch 99 — what a follower of a
	// newer generation sends when a stale ex-primary reappears.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hb, err := json.Marshal(cluster.Hello{Proto: cluster.Proto, Shard: 0, Shards: 1, Epoch: 99, Config: d.s.configSig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(durable.AppendFrame(nil, 'H', hb)); err != nil {
		t.Fatal(err)
	}
	sr := durable.NewStreamReader(conn)
	tag, payload, err := sr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if tag != 'E' {
		t.Fatalf("deposed primary answered frame %q, want an error frame", tag)
	}
	var em cluster.ErrMsg
	if err := json.Unmarshal(payload, &em); err != nil {
		t.Fatal(err)
	}
	if em.Leader != "http://primary.invalid" {
		t.Fatalf("refusal leader hint %q", em.Leader)
	}

	// ObserveEpoch ran before the refusal was written, so by now the node is
	// fenced: role flipped, writes 421.
	if got := d.s.Role(); got != "fenced" {
		t.Fatalf("role after higher-epoch hello: %s, want fenced", got)
	}
	req, _ := newJSONRequest("POST", d.ts.URL+"/v1/leases", acquireRequest{Client: "fenced-client", Kind: "gps"})
	resp, err := d.cli.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("write on fenced node: status %d, want 421", resp.StatusCode)
	}

	// Promotion un-fences into a generation past everything it has heard of.
	epoch, promoted := d.s.Promote()
	if !promoted || epoch != 100 {
		t.Fatalf("Promote on fenced node = (%d, %v), want (100, true)", epoch, promoted)
	}
	if d.s.Role() != "primary" {
		t.Fatalf("role after promote: %s", d.s.Role())
	}
	d.acquire("post-fence", "wakelock")
}

// TestServePathDoesNotAllocateWithReplication re-runs the renew zero-alloc
// pin with clustering enabled: the role gate in front of the handler and a
// live subscriber attached to the shard's stream, so every renew publishes
// its journal bytes. The publish must ride the subscriber's pre-grown
// double buffer — zero allocations per request, same as standalone.
func TestServePathDoesNotAllocateWithReplication(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses itself under the race detector; allocation pins hold only in normal builds")
	}
	s := allocServer(t, func(o *Options) {
		// Auto-failover armed with a ping interval no tick can reach during
		// the measurement: the lease gate's extra atomic load sits on the
		// serve path and must be part of what the zero-alloc pin covers.
		o.Cluster = &ClusterConfig{
			Role: "primary", Advertise: "http://primary.invalid",
			NodeID:       "solo",
			Peers:        []Peer{{ID: "solo", URL: "http://primary.invalid", ReplAddr: "127.0.0.1:1"}},
			AutoFailover: true,
			PingEvery:    time.Minute,
		}
	})
	if err := s.StartAutoFailover(); err != nil {
		t.Fatal(err)
	}
	lr := httpAcquire(t, s, "alloc-repl-client")
	sub := cluster.NewSubscriber(0, "alloc-test")
	s.shards[0].repl.Attach(sub)
	defer s.shards[0].repl.Detach(sub)

	handler := s.record(routeRenew, s.admit(s.gate(s.handleRenew)))
	req, rb := newReplayRequest("POST", fmt.Sprintf("/v1/leases/%d/renew", lr), []byte(`{"cpu_ms":1.5,"ui_updates":1}`))
	req.SetPathValue("id", fmt.Sprintf("%d", lr))
	w := &nullWriter{h: http.Header{"Content-Type": {""}}}

	run := func() {
		rb.off = 0
		w.status = 0
		handler(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("renew: status %d", w.status)
		}
	}
	before := s.shards[0].repl.Seq()
	if avg := measureAllocs(t, 200, run); avg > 0 {
		t.Errorf("replicated renew serve path allocates %.2f times per request, want 0", avg)
	}
	if got := s.shards[0].repl.Seq() - before; got < 200 {
		t.Fatalf("stream advanced %d records during the measurement; replication was not exercised", got)
	}
}

// BenchmarkReplicatedApply is the bench_gate twin of the test above: the
// renew apply path with a live subscriber attached, pinned at zero
// allocations per op. With no sender draining it, the subscriber buffers
// until subBufMax and then marks itself overflowed (a real sender would
// drop the conn); either way the publish stays allocation-free apart from
// the handful of amortized buffer growths.
func BenchmarkReplicatedApply(b *testing.B) {
	opts := benchOptions(1)
	opts.Cluster = &ClusterConfig{Role: "primary", Advertise: "http://primary.invalid"}
	s := NewServer(opts)
	defer s.Close()
	sub := cluster.NewSubscriber(0, "bench")
	s.prim.Stream(0).Attach(sub)
	defer s.prim.Stream(0).Detach(sub)

	sh, local := benchAcquire(b, s, "repl-apply-bench")
	rep := usageReport{CPUMS: 1, UIUpdates: 1}
	env := getOpEnv()
	defer putOpEnv(env)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.rec = opRecord{Op: "renew", LeaseID: local, Report: &rep}
		sh.applyOp(env, "")
	}
}

// BenchmarkReplicationStream measures end-to-end replicated throughput: a
// primary publishing renews over real TCP to an in-process follower that
// applies every record. The timed region covers publish plus the follower's
// drain to zero lag, so frames/s (and the bytes/s figure SetBytes derives)
// reflect what a follower can actually sustain; lag_records is the backlog
// at the instant the primary stopped publishing — how far a follower
// trails a full-speed primary.
func BenchmarkReplicationStream(b *testing.B) {
	popts := benchOptions(1)
	popts.Cluster = &ClusterConfig{Role: "primary", Advertise: "http://primary.invalid"}
	p := NewServer(popts)
	defer p.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	p.ServeReplication(ln)

	fopts := benchOptions(1)
	fopts.Cluster = &ClusterConfig{Role: "follower", PrimaryAddr: ln.Addr().String()}
	f := NewServer(fopts)
	defer f.Close()
	if err := f.StartFollowing(); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, ok := f.replicaStats(); ok && st.Connected == 1 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("follower never connected")
		}
		time.Sleep(time.Millisecond)
	}

	sh, local := benchAcquire(b, p, "stream-bench")
	rep := usageReport{CPUMS: 1, UIUpdates: 1}
	env := getOpEnv()
	defer putOpEnv(env)
	env.rec = opRecord{Op: "renew", LeaseID: local, Report: &rep}
	sh.applyOp(env, "")
	b.SetBytes(int64(len(appendOpRecord(nil, &env.rec))))

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.rec = opRecord{Op: "renew", LeaseID: local, Report: &rep}
		sh.applyOp(env, "")
	}
	target := p.prim.Stream(0).Seq()
	st, _ := f.replicaStats()
	backlog := target - st.AppliedSeq
	if backlog < 0 {
		backlog = 0
	}
	drainDeadline := time.Now().Add(60 * time.Second)
	for {
		if st, _ := f.replicaStats(); st.AppliedSeq >= target {
			break
		}
		if time.Now().After(drainDeadline) {
			st, _ := f.replicaStats()
			b.Fatalf("follower never drained: applied %d of %d", st.AppliedSeq, target)
		}
		time.Sleep(200 * time.Microsecond)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "frames/s")
	}
	b.ReportMetric(float64(backlog), "lag_records")
}
