package leased

// dedupCache makes mutations idempotent across retries: a client that lost a
// response (crash, dropped connection, timeout) resends the same request
// with the same X-Request-ID and gets the stored response back instead of a
// second application. Bounded FIFO; eviction order is insertion order, so a
// cache rebuilt by journal replay (insertions in log order) matches the
// pre-crash cache exactly.
//
// The id queue is a fixed-capacity ring buffer, not a sliced-forward slice:
// evicting with order = order[1:] would keep the backing array alive, so a
// long-lived daemon would pin every evicted request-ID string (and, through
// the map, every evicted response body) forever. The ring reuses its cap
// slots in place and the map delete drops the response, so retention is
// bounded by cap regardless of how many requests ever passed through.
type dedupCache struct {
	cap  int
	m    map[string][]byte
	ring []string // circular id queue; oldest at head
	head int      // index of the oldest live entry
	n    int      // live entries (≤ cap)
}

// dedupEntry is one cached response in the checkpoint payload.
type dedupEntry struct {
	ID   string `json:"id"`
	Resp []byte `json:"resp"`
}

func newDedupCache(capacity int) *dedupCache {
	return &dedupCache{
		cap:  capacity,
		m:    make(map[string][]byte, capacity),
		ring: make([]string, capacity),
	}
}

func (c *dedupCache) get(id string) ([]byte, bool) {
	raw, ok := c.m[id]
	return raw, ok
}

func (c *dedupCache) size() int { return c.n }

func (c *dedupCache) put(id string, resp []byte) {
	if _, ok := c.m[id]; ok {
		c.m[id] = resp
		return
	}
	if c.cap <= 0 {
		return
	}
	if c.n == c.cap {
		// Full: the tail slot is the head slot. Evict the oldest — map
		// delete releases its response; overwriting the ring slot releases
		// its id string — and advance the head.
		delete(c.m, c.ring[c.head])
		c.ring[c.head] = id
		c.head = (c.head + 1) % c.cap
	} else {
		c.ring[(c.head+c.n)%c.cap] = id
		c.n++
	}
	c.m[id] = resp
}

// entries lists the cache oldest-first, for the checkpoint payload.
func (c *dedupCache) entries() []dedupEntry {
	if c.n == 0 {
		return nil
	}
	out := make([]dedupEntry, 0, c.n)
	for i := 0; i < c.n; i++ {
		id := c.ring[(c.head+i)%c.cap]
		out = append(out, dedupEntry{ID: id, Resp: c.m[id]})
	}
	return out
}

// load refills the cache from a checkpoint payload.
func (c *dedupCache) load(entries []dedupEntry) {
	for _, e := range entries {
		c.put(e.ID, e.Resp)
	}
}
