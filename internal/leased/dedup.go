package leased

// dedupCache makes mutations idempotent across retries: a client that lost a
// response (crash, dropped connection, timeout) resends the same request
// with the same X-Request-ID and gets the stored response back instead of a
// second application. Bounded FIFO; eviction order is insertion order, so a
// cache rebuilt by journal replay (insertions in log order) matches the
// pre-crash cache exactly.
type dedupCache struct {
	cap   int
	m     map[string][]byte
	order []string
}

// dedupEntry is one cached response in the checkpoint payload.
type dedupEntry struct {
	ID   string `json:"id"`
	Resp []byte `json:"resp"`
}

func newDedupCache(capacity int) *dedupCache {
	return &dedupCache{cap: capacity, m: make(map[string][]byte, capacity)}
}

func (c *dedupCache) get(id string) ([]byte, bool) {
	raw, ok := c.m[id]
	return raw, ok
}

func (c *dedupCache) put(id string, resp []byte) {
	if _, ok := c.m[id]; ok {
		c.m[id] = resp
		return
	}
	c.m[id] = resp
	c.order = append(c.order, id)
	for len(c.order) > c.cap {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
}

// entries lists the cache oldest-first, for the checkpoint payload.
func (c *dedupCache) entries() []dedupEntry {
	if len(c.order) == 0 {
		return nil
	}
	out := make([]dedupEntry, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, dedupEntry{ID: id, Resp: c.m[id]})
	}
	return out
}

// load refills the cache from a checkpoint payload.
func (c *dedupCache) load(entries []dedupEntry) {
	for _, e := range entries {
		c.put(e.ID, e.Resp)
	}
}
