package leased

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestQuantileClampedToMax pins the sparse-histogram fix: no estimated
// quantile may exceed the largest latency actually observed. A single 60µs
// sample used to report p99 = 100µs (its bucket's upper bound) against
// max = 60µs.
func TestQuantileClampedToMax(t *testing.T) {
	var h hist
	h.observe(60*time.Microsecond, false)
	s := h.snap()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got := s.quantile(q); got > 60*time.Microsecond {
			t.Errorf("q%.0f = %v exceeds observed max 60µs", q*100, got)
		}
	}
	if s.quantile(0.99) != 60*time.Microsecond {
		t.Errorf("single-sample p99 = %v, want the sample itself", s.quantile(0.99))
	}
}

// TestQuantileSparse covers sparse multi-bucket shapes, including a sample
// in the +Inf bucket (beyond the last bound).
func TestQuantileSparse(t *testing.T) {
	var h hist
	h.observe(70*time.Microsecond, false) // bucket ≤100µs
	h.observe(3*time.Millisecond, false)  // bucket ≤5ms
	s := h.snap()
	if got := s.quantile(0.99); got > 3*time.Millisecond {
		t.Errorf("p99 = %v exceeds observed max 3ms", got)
	}
	if got := s.quantile(0.50); got > 3*time.Millisecond {
		t.Errorf("p50 = %v exceeds observed max", got)
	}

	// +Inf bucket: the only honest upper bound is the observed max.
	var h2 hist
	h2.observe(5*time.Second, false)
	if got := h2.snap().quantile(0.99); got != 5*time.Second {
		t.Errorf("+Inf-bucket p99 = %v, want observed max 5s", got)
	}

	// Empty histogram reports zero, not garbage.
	var h3 hist
	if got := h3.snap().quantile(0.99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
}

// TestQuantileMonotone: with a dense histogram, p50 ≤ p90 ≤ p99 ≤ max.
func TestQuantileMonotone(t *testing.T) {
	var h hist
	for i := 1; i <= 1000; i++ {
		h.observe(time.Duration(i)*time.Microsecond, false)
	}
	s := h.snap()
	p50, p90, p99 := s.quantile(0.5), s.quantile(0.9), s.quantile(0.99)
	if !(p50 <= p90 && p90 <= p99 && p99 <= time.Duration(s.maxNS)) {
		t.Fatalf("quantiles not monotone: p50=%v p90=%v p99=%v max=%v", p50, p90, p99, time.Duration(s.maxNS))
	}
}

// TestHistSnapMerge checks the bucket-wise merge: the merged quantile must
// come from the combined distribution, and the merged max is the max of
// maxes.
func TestHistSnapMerge(t *testing.T) {
	var a, b hist
	for i := 0; i < 99; i++ {
		a.observe(40*time.Microsecond, false)
	}
	b.observe(800*time.Millisecond, true)
	sa, sb := a.snap(), b.snap()
	sa.merge(sb)
	if sa.count != 100 || sa.errors != 1 {
		t.Fatalf("merged count=%d errors=%d, want 100/1", sa.count, sa.errors)
	}
	if got := time.Duration(sa.maxNS); got != 800*time.Millisecond {
		t.Fatalf("merged max = %v, want 800ms", got)
	}
	// 99 fast + 1 slow: p50 sits in the fast bucket, p99 falls outside it.
	if got := sa.quantile(0.50); got > 50*time.Microsecond {
		t.Fatalf("merged p50 = %v, want ≤50µs", got)
	}
	if got := sa.quantile(0.999); got != 800*time.Millisecond {
		t.Fatalf("merged p99.9 = %v, want the slow shard's max", got)
	}
}

// TestTimeoutCountsAsError is the focused satellite regression: a handler
// that stalls past the TimeoutHandler deadline "succeeds" against the dead
// writer (status stays 200), but record must see the expired request
// context and bill the observation as an error.
func TestTimeoutCountsAsError(t *testing.T) {
	opts := testOptions()
	s := NewServer(opts)
	defer s.Close()

	done := make(chan struct{})
	stalled := func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // stall until TimeoutHandler gives up on us
		close(done)
	}
	ts := httptest.NewServer(http.TimeoutHandler(s.record(routeAcquire, stalled), 30*time.Millisecond, `{"error":"request timed out"}`))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("client saw %d, want TimeoutHandler's 503", resp.StatusCode)
	}
	<-done
	// The observation lands when the stalled handler returns; give the
	// record wrapper a beat to finish.
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := s.metrics.unrouted[routeAcquire].snap()
		if snap.count == 1 && snap.errors == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed-out request recorded as count=%d errors=%d, want 1/1", snap.count, snap.errors)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardRoutingAndMergedMetrics drives clients across a 4-shard daemon
// and checks (a) every lease ID decodes to the shard its client hashes to,
// (b) the merged /metrics equals the sum of the per-shard breakdowns.
func TestShardRoutingAndMergedMetrics(t *testing.T) {
	opts := testOptions()
	opts.Shards = 4
	r := newRig(t, opts)

	const n = 24
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("route-%02d", i)
		lr := r.acquire(name, "wakelock")
		shIdx, _ := decodeLeaseID(lr.LeaseID)
		if want := shardIndex(name, opts.Shards); shIdx != want {
			t.Fatalf("client %s landed on shard %d, hash says %d", name, shIdx, want)
		}
		if lr.Shard != shIdx {
			t.Fatalf("response shard %d disagrees with lease id tag %d", lr.Shard, shIdx)
		}
		r.renew(lr.LeaseID, usageReport{CPUMS: 1})
	}

	var snap Snapshot
	if code := r.call("GET", "/metrics", nil, &snap); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if snap.Shards != 4 || len(snap.PerShard) != 4 {
		t.Fatalf("shards=%d per_shard=%d, want 4/4", snap.Shards, len(snap.PerShard))
	}
	var clients, live, renewals int
	var acq, ren int64
	for _, ps := range snap.PerShard {
		clients += ps.Clients
		live += ps.Leases.Live
		renewals += ps.Manager.Renewals
		acq += ps.Requests["acquire"].Count
		ren += ps.Requests["renew"].Count
	}
	if clients != snap.Clients || clients != n {
		t.Fatalf("per-shard clients sum %d, merged %d, want %d", clients, snap.Clients, n)
	}
	if live != snap.Leases.Live || live != n {
		t.Fatalf("per-shard live sum %d, merged %d, want %d", live, snap.Leases.Live, n)
	}
	if renewals != snap.Manager.Renewals {
		t.Fatalf("per-shard renewals sum %d != merged %d", renewals, snap.Manager.Renewals)
	}
	if acq != snap.Requests["acquire"].Count || acq != n {
		t.Fatalf("per-shard acquire sum %d, merged %d, want %d", acq, snap.Requests["acquire"].Count, n)
	}
	if ren != snap.Requests["renew"].Count || ren != n {
		t.Fatalf("per-shard renew sum %d, merged %d, want %d", ren, snap.Requests["renew"].Count, n)
	}
	// All four shards actually saw traffic (24 FNV-spread names).
	for _, ps := range snap.PerShard {
		if ps.Clients == 0 {
			t.Fatalf("shard %d saw no clients; routing is not spreading", ps.Shard)
		}
	}
}
