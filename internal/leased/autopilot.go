package leased

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
)

// Autopilot: the paper's lease discipline applied to the cluster itself.
// Leadership is a resource; the leader proves liveness by renewing (follower
// acks within the lease term) and is deposed when it defaults (followers
// detect the silence and run a deterministic succession). One goroutine per
// node drives three duties off the same ticker:
//
//   - leader lease (primaries): count distinct followers that acked within
//     the lease term; self plus those short of quorum ⇒ suspend writes
//     (421 + Leader hint) until the quorum returns. The lease arms on the
//     first quorum of a leadership stint, so cold boots and fresh promotees
//     are not read-only while their followers find them.
//   - peer probes (primaries): an epoch exchange with every configured peer.
//     Carrying our epoch deposes stale primaries on the other side; hearing
//     a higher epoch back fences us. This is how a healed minority leader
//     is fenced without anyone re-following it.
//   - election (followers): once every shard stream has been silent past the
//     detection window, poll the peers' /v1/election documents. If a newer
//     primary exists, re-aim at it; if the old leader is reachable and still
//     writable, the break is local — keep redialing; otherwise rank the
//     suspecting candidates by (highest applied offset, lowest node ID) and
//     the winner self-promotes through the ordinary Promote path. The
//     winner additionally waits out detection window + lease term of
//     silence, so the deposed leader's lease has expired before the
//     successor opens for writes: at most one writable leader at all times
//     (up to scheduling-pause bounds; DESIGN.md §16).
//
// No new consensus protocol: promotion, fencing and epoch bands are exactly
// the PR 9 machinery; the autopilot only decides *when* to pull the same
// levers an operator would.

// electionState is the /v1/election document — the per-node facts the
// succession protocol exchanges.
type electionState struct {
	Node        string `json:"node_id"`
	Role        string `json:"role"`
	Epoch       uint64 `json:"cluster_epoch"`
	Writable    bool   `json:"writable"`
	Suspect     bool   `json:"suspect"`
	AppliedSeq  int64  `json:"applied_seq"`
	LastHeardMS int64  `json:"last_heard_ms"`
	Leader      string `json:"leader,omitempty"`
}

// electionState snapshots this node's own document.
func (s *Server) electionState() electionState {
	es := electionState{
		Role:     s.Role(),
		Epoch:    s.ClusterEpoch(),
		Writable: s.Writable(),
		Leader:   s.LeaderHint(),
	}
	if cc := s.opts.Cluster; cc != nil {
		es.Node = cc.NodeID
	}
	if rs, ok := s.replicaStats(); ok {
		es.Suspect = rs.Suspect
		es.AppliedSeq = rs.AppliedSeq
		es.LastHeardMS = rs.LastHeardMS
	} else if s.prim != nil {
		for i := range s.shards {
			es.AppliedSeq += s.prim.Stream(i).Seq()
		}
	}
	return es
}

// handleElection is GET /v1/election. Hand-rolled like handlePromote so the
// read side of the succession protocol allocates nothing surprising.
func (s *Server) handleElection(w http.ResponseWriter, r *http.Request) {
	es := s.electionState()
	w.Header().Set("Content-Type", "application/json")
	b := make([]byte, 0, 224)
	b = append(b, `{"node_id":`...)
	b = strconv.AppendQuote(b, es.Node)
	b = append(b, `,"role":"`...)
	b = append(b, es.Role...)
	b = append(b, `","cluster_epoch":`...)
	b = strconv.AppendUint(b, es.Epoch, 10)
	b = append(b, `,"writable":`...)
	b = strconv.AppendBool(b, es.Writable)
	b = append(b, `,"suspect":`...)
	b = strconv.AppendBool(b, es.Suspect)
	b = append(b, `,"applied_seq":`...)
	b = strconv.AppendInt(b, es.AppliedSeq, 10)
	b = append(b, `,"last_heard_ms":`...)
	b = strconv.AppendInt(b, es.LastHeardMS, 10)
	if es.Leader != "" {
		b = append(b, `,"leader":`...)
		b = strconv.AppendQuote(b, es.Leader)
	}
	b = append(b, '}', '\n')
	w.Write(b)
}

// StartAutoFailover arms the failure detector, leader lease and election.
// Call after ServeReplication (and StartFollowing, on followers); Close
// stops it.
func (s *Server) StartAutoFailover() error {
	cc := s.opts.Cluster
	if cc == nil || !cc.AutoFailover {
		return fmt.Errorf("leased: auto-failover not configured")
	}
	if cc.NodeID == "" {
		return fmt.Errorf("leased: auto-failover requires a node ID")
	}
	if _, ok := cc.peer(cc.NodeID); !ok {
		return fmt.Errorf("leased: node %q is not in the configured peer set", cc.NodeID)
	}
	if term, detect := cc.leaseTerm(), cc.tuning().DetectAfter(); term >= detect {
		return fmt.Errorf("leased: lease term %v must be shorter than the detection window %v (missed-pings × ping-every), or a deposed leader could still hold its lease when a successor finishes detecting it", term, detect)
	}
	s.autoStop = make(chan struct{})
	s.autoWG.Add(1)
	go s.autopilot()
	return nil
}

func (s *Server) stopAutopilot() {
	if s.autoStop == nil {
		return
	}
	s.autoOnce.Do(func() { close(s.autoStop) })
	s.autoWG.Wait()
}

func (s *Server) autopilot() {
	defer s.autoWG.Done()
	cc := s.opts.Cluster
	tune := cc.tuning()
	term := cc.leaseTerm()
	logf := cc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// Election polls must resolve well inside one detection window, or a
	// candidate could promote off stale peer documents.
	client := &http.Client{Timeout: maxDuration(term/2, 50*time.Millisecond)}
	ticker := time.NewTicker(tune.PingEvery)
	defer ticker.Stop()
	var lastProbe time.Time
	for {
		select {
		case <-s.autoStop:
			return
		case <-ticker.C:
		}
		switch s.role.Load() {
		case rolePrimary:
			s.leaseTick(term, logf)
			if time.Since(lastProbe) >= term {
				lastProbe = time.Now()
				s.probePeers(tune, term, logf)
			}
		case roleFollower:
			s.electTick(client, tune, term, logf)
		case roleFenced:
			// Terminal in-process: a fenced ex-primary's walls already run
			// on real time, so it cannot re-adopt snapshots. It keeps
			// answering 421 with the successor's Leader hint; the operator
			// restarts it as a follower (or re-promotes it) when ready.
		}
	}
}

// leaseTick renews or expires the leadership lease from follower-ack
// evidence: self plus the distinct nodes that acked within the term,
// compared against quorum.
func (s *Server) leaseTick(term time.Duration, logf func(string, ...any)) {
	cc := s.opts.Cluster
	quorum := cc.quorum()
	held := 1+s.prim.AckedNodes(term) >= quorum
	if held && !s.leaseArmed.Swap(true) {
		if quorum > 1 {
			logf("leased: leadership lease armed (quorum %d of %d peers acking)", quorum, len(cc.Peers))
		}
		return
	}
	if !s.leaseArmed.Load() {
		return
	}
	if was := s.writable.Swap(held); was != held {
		if held {
			logf("leased: leadership lease renewed; writes resumed")
		} else {
			logf("leased: leadership lease expired (no quorum of acks within %v); writes suspended", term)
		}
	}
}

// probePeers runs one asynchronous epoch-exchange sweep over the configured
// peers (skipped if the previous sweep is still in flight — blackholed
// peers make a sweep slow, and the lease tick must not fall behind it).
func (s *Server) probePeers(tune cluster.Tuning, term time.Duration, logf func(string, ...any)) {
	if !s.probeBusy.CompareAndSwap(false, true) {
		return
	}
	cc := s.opts.Cluster
	timeout := minDuration(maxDuration(term, 200*time.Millisecond), 2*time.Second)
	s.autoWG.Add(1)
	go func() {
		defer s.autoWG.Done()
		defer s.probeBusy.Store(false)
		for _, p := range cc.Peers {
			if p.ID == cc.NodeID || p.ReplAddr == "" {
				continue
			}
			h := cluster.Hello{
				Shards: len(s.shards),
				Epoch:  s.cepoch.Load(),
				Config: s.configSig(),
				Node:   cc.NodeID,
				Leader: s.LeaderHint(),
			}
			em, err := cluster.Probe(p.ReplAddr, h, timeout)
			if err != nil {
				continue
			}
			if em.Epoch > s.cepoch.Load() {
				logf("leased: peer %s is at cluster epoch %d (ours %d); fencing", p.ID, em.Epoch, s.cepoch.Load())
				s.ObserveEpoch(em.Epoch, em.Leader)
				return
			}
		}
	}()
}

// electTick is the follower side of succession. It acts only when this
// node's failure detector has tripped (every shard stream silent past the
// detection window), and then only on the consistent, quorate view the
// /v1/election polls return.
func (s *Server) electTick(client *http.Client, tune cluster.Tuning, term time.Duration, logf func(string, ...any)) {
	fol := s.fol.Load()
	if fol == nil {
		return
	}
	st := fol.Stats()
	if !st.Suspect {
		return
	}
	cc := s.opts.Cluster
	myEpoch := s.cepoch.Load()
	cands := []candidate{{id: cc.NodeID, applied: st.AppliedSeq}}
	for _, p := range cc.Peers {
		if p.ID == cc.NodeID || p.URL == "" {
			continue
		}
		es, err := fetchElectionState(client, p.URL)
		if err != nil {
			continue
		}
		switch {
		case es.Role == "primary" && es.Epoch > myEpoch:
			// A successor already exists — adopt it instead of electing.
			logf("leased: found primary %s at epoch %d; re-aiming replication", p.ID, es.Epoch)
			s.refollow(p)
			return
		case es.Role == "primary" && es.Epoch >= myEpoch && es.Writable:
			// The leader is alive and holds its lease; the silence is our
			// own link. Keep redialing, do not depose it.
			return
		case es.Role == "follower" && es.Epoch == myEpoch && es.Suspect:
			cands = append(cands, candidate{id: es.Node, applied: es.AppliedSeq})
		}
	}
	quorum := cc.quorum()
	if len(cands) < quorum {
		// Minority side of a partition: not enough suspecting followers to
		// speak for the cluster. Stay a follower.
		return
	}
	win := electWinner(cands)
	if win.id != cc.NodeID {
		// Deterministic ranking says another candidate succeeds; it will,
		// and a later tick adopts it via the refollow branch above.
		return
	}
	// Lease handoff: wait until the deposed leader's lease must have
	// expired (its last possible quorum ack is no later than our last
	// heard frame) before opening a new writable generation.
	if st.LastHeardMS < (tune.DetectAfter() + term).Milliseconds() {
		return
	}
	epoch, promoted := s.Promote()
	if promoted {
		logf("leased: elected by %d of %d peers after %dms of leader silence; self-promoted to epoch %d",
			len(cands), len(cc.Peers), st.LastHeardMS, epoch)
	}
}

// refollow re-aims replication at peer p: stop the old sessions, adopt p as
// the leader hint, start fresh sessions against its replication address.
func (s *Server) refollow(p Peer) {
	if p.ReplAddr == "" {
		return
	}
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	if s.role.Load() != roleFollower {
		return
	}
	if old := s.fol.Load(); old != nil {
		old.Stop()
	}
	if p.URL != "" {
		s.leader.Store(p.URL)
	}
	s.startFollower(p.ReplAddr)
}

// candidate is one election entrant.
type candidate struct {
	id      string
	applied int64
}

// electWinner ranks candidates deterministically: highest applied
// replication offset first (minimize lost suffix), lowest node ID as the
// tiebreak. Every node computes the same winner from the same documents —
// that determinism, plus epoch fencing for the races, stands in for a
// consensus round.
func electWinner(cands []candidate) candidate {
	win := cands[0]
	for _, c := range cands[1:] {
		if c.applied > win.applied || (c.applied == win.applied && c.id < win.id) {
			win = c
		}
	}
	return win
}

// fetchElectionState polls one peer's /v1/election document.
func fetchElectionState(client *http.Client, baseURL string) (electionState, error) {
	var es electionState
	resp, err := client.Get(baseURL + "/v1/election")
	if err != nil {
		return es, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return es, fmt.Errorf("election poll: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&es); err != nil {
		return es, err
	}
	return es, nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
