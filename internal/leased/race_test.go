package leased

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lease"
)

// hammerOptions uses very short terms so term-check and restore events fire
// from the wall-clock goroutine *during* the hammer, interleaving with the
// HTTP mutations — the concurrency this test exists to exercise.
func hammerOptions() Options {
	return Options{
		Lease: lease.Config{
			Term:              15 * time.Millisecond,
			Tau:               25 * time.Millisecond,
			TauMax:            100 * time.Millisecond,
			MisbehaviorWindow: 1,
		},
		// Several shards, so the hammer exercises routing and concurrent
		// per-shard clocks, not just one serialized event loop.
		Shards: 3,
	}
}

// TestConcurrentHammer fires acquire/renew/release/get/destroy from many
// goroutines against one daemon while leases expire and defer underneath,
// then checks the lease-table invariants. Run with -race.
func TestConcurrentHammer(t *testing.T) {
	s := NewServer(hammerOptions())
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	const (
		workers   = 8
		opsPerW   = 300
		kindCount = 3
	)
	kinds := []string{"wakelock", "gps", "sensor"}

	var wg sync.WaitGroup
	var mu sync.Mutex
	// lastTerms tracks, per lease id, the highest term index any response
	// reported; term indices must never be observed going backwards.
	lastTerms := map[uint64]int{}
	noteTerms := func(lr leaseResponse) {
		mu.Lock()
		defer mu.Unlock()
		if lr.State == lease.Dead.String() {
			// A dead lease's view carries no term info.
			return
		}
		if prev, ok := lastTerms[lr.LeaseID]; ok && lr.Terms < prev {
			t.Errorf("lease %d term index went backwards: %d -> %d", lr.LeaseID, prev, lr.Terms)
		}
		lastTerms[lr.LeaseID] = lr.Terms
	}

	client := ts.Client()
	// doJSON is goroutine-safe: it only ever t.Error()s, never t.Fatal()s.
	doJSON := func(method, path string, body string) (leaseResponse, int) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Error(err)
			return leaseResponse{}, 0
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Error(err)
			return leaseResponse{}, 0
		}
		defer resp.Body.Close()
		var lr leaseResponse
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
				t.Errorf("%s %s: decoding response: %v", method, path, err)
			}
		}
		io.Copy(io.Discard, resp.Body)
		return lr, resp.StatusCode
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			name := fmt.Sprintf("hammer-%d", w)
			var id uint64
			for i := 0; i < opsPerW; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2: // acquire (same (client,kind) → same lease)
					kind := kinds[rng.Intn(kindCount)]
					lr, code := doJSON("POST", "/v1/leases",
						fmt.Sprintf(`{"client":%q,"kind":%q}`, name, kind))
					if code == 200 {
						noteTerms(lr)
						id = lr.LeaseID
					}
				case 3, 4, 5, 6: // renew with a random usage report
					if id == 0 {
						continue
					}
					lr, code := doJSON("POST", fmt.Sprintf("/v1/leases/%d/renew", id),
						fmt.Sprintf(`{"cpu_ms":%d,"exceptions":%d}`, rng.Intn(5), rng.Intn(2)))
					if code == 200 {
						noteTerms(lr)
					}
				case 7: // release — and sometimes double-release immediately
					if id == 0 {
						continue
					}
					doJSON("DELETE", fmt.Sprintf("/v1/leases/%d", id), "")
					if rng.Intn(2) == 0 {
						doJSON("DELETE", fmt.Sprintf("/v1/leases/%d", id), "")
					}
				case 8: // get
					if id == 0 {
						continue
					}
					lr, code := doJSON("GET", fmt.Sprintf("/v1/leases/%d", id), "")
					if code == 200 {
						noteTerms(lr)
					}
				case 9: // destroy, then double-destroy (must 404, never corrupt)
					if id == 0 || rng.Intn(4) != 0 {
						continue
					}
					doJSON("DELETE", fmt.Sprintf("/v1/leases/%d?destroy=1", id), "")
					if _, code := doJSON("DELETE", fmt.Sprintf("/v1/leases/%d?destroy=1", id), ""); code == 200 {
						t.Errorf("double destroy of lease %d succeeded", id)
					}
					id = 0
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiesced invariants, checked per shard under that shard's clock.
	for _, sh := range s.shards {
		sh := sh
		sh.do(func() {
			live := sh.mgr.Leases()
			if len(live) != sh.mgr.LeaseCount() {
				t.Errorf("shard %d: Leases() len %d != LeaseCount %d", sh.id, len(live), sh.mgr.LeaseCount())
			}
			byID := map[uint64]bool{}
			for _, l := range live {
				if st := l.State(); st != lease.Active && st != lease.Inactive && st != lease.Deferred {
					t.Errorf("shard %d: live lease %d in state %v", sh.id, l.ID(), st)
				}
				if byID[l.ID()] {
					t.Errorf("shard %d: duplicate live lease id %d", sh.id, l.ID())
				}
				byID[l.ID()] = true
			}
			// Every object the shard tracks maps to a live lease and back.
			for id, o := range sh.byLease {
				if o.destroyed {
					t.Errorf("shard %d: destroyed object still tracked for lease %d", sh.id, id)
				}
				if !byID[id] {
					t.Errorf("shard %d: tracks lease %d the manager does not", sh.id, id)
				}
				if got := sh.byKey[clientKey{o.uid, o.kind}]; got != o {
					t.Errorf("shard %d: byKey/byLease disagree for lease %d", sh.id, id)
				}
			}
			for key, o := range sh.byKey {
				if sh.byLease[o.leaseID] != o {
					t.Errorf("shard %d: byKey entry %v not in byLease", sh.id, key)
				}
			}
			if sh.mgr.CreatedTotal() < sh.mgr.LeaseCount() {
				t.Errorf("shard %d: created %d < live %d", sh.id, sh.mgr.CreatedTotal(), sh.mgr.LeaseCount())
			}
			// Every client on this shard actually routes here.
			for name := range sh.clients {
				if got := shardIndex(name, len(s.shards)); got != sh.id {
					t.Errorf("client %q lives on shard %d but routes to %d", name, sh.id, got)
				}
			}
		})
	}
}

// TestConcurrentSnapshotDuringHammer takes metrics snapshots while leases
// churn, verifying the lock-free histograms and clocked lease sampling
// coexist with mutations under -race.
func TestConcurrentSnapshotDuringHammer(t *testing.T) {
	s := NewServer(hammerOptions())
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("snap-%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Post(ts.URL+"/v1/leases", "application/json",
					strings.NewReader(fmt.Sprintf(`{"client":%q,"kind":"wakelock"}`, name)))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := s.snapshot()
		if snap.Leases.Live < 0 || snap.Leases.Dead < 0 {
			t.Errorf("negative lease counts: %+v", snap.Leases)
		}
	}
	close(stop)
	wg.Wait()
}
