package leased

// Hand-rolled wire codec for the serving hot path. encoding/json costs the
// daemon reflection, interface boxing and per-request garbage on every
// operation; this file replaces it on the hot routes with a zero-allocation
// JSON subset engine:
//
//   - a scanning decoder (jparser) that parses request bodies in place over
//     a pooled buffer — string fields are returned as views into the body
//     (or into a pooled unescape arena when they contain escapes), numbers
//     are parsed with an exact Clinger fast path that only falls back to
//     strconv for >19-significant-digit pathologies;
//   - append-style encoders (the PR 3 strconv renderer pattern) that build
//     responses and journal records into pooled []byte scratch.
//
// The codec is deliberately NOT a different dialect: for every request and
// response type it accepts exactly what encoding/json accepts and emits
// byte-for-byte what encoding/json emits (field order, omitempty, HTML
// escaping, float formatting, case-folded field matching, UTF-8
// replacement, null tolerance). codec_test.go enforces this differentially
// — fuzzed inputs must produce identical accept/reject decisions and
// identical values, and fuzzed values must encode to identical bytes — so
// journal records written by this encoder stay readable by json.Unmarshal
// during replay, and any client built on a stock JSON library sees a stock
// JSON protocol.
//
// Semantics intentionally mirrored from encoding/json:
//
//   - top-level null (and an empty or whitespace-only body) is a no-op;
//   - null for any field is a no-op; unknown fields are validated and
//     skipped; duplicate keys are last-wins;
//   - field names match exactly or under simple Unicode case-folding;
//   - NaN/±Inf have no literal and numbers out of float64 range are
//     rejected (the type's round-trip can never smuggle a non-finite in);
//   - invalid UTF-8 inside strings becomes U+FFFD; unpaired surrogate
//     escapes become U+FFFD; control characters are rejected;
//   - trailing bytes after the top-level value are ignored, as with
//     json.Decoder.Decode (which the routes used before this codec);
//   - nesting beyond maxNestingDepth is rejected.

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// maxNestingDepth mirrors encoding/json's parser depth limit.
const maxNestingDepth = 10000

var (
	errUnexpectedEnd = errors.New("unexpected end of JSON input")
	errTooDeep       = errors.New("exceeded max depth")
)

// jparser scans one JSON document in place. String values are views into
// buf when clean, or into arena when they needed unescaping; the arena is
// sized so it never reallocates mid-parse (views stay valid for the whole
// document).
type jparser struct {
	buf   []byte
	pos   int
	arena []byte
	depth int
}

// begin points the parser at a new document. The arena is sized to the
// worst case up front — 3× the body, since one invalid byte can become a
// three-byte U+FFFD — so spans handed out during the parse never move.
func (p *jparser) begin(buf []byte) {
	p.buf, p.pos, p.depth = buf, 0, 0
	if need := 3 * len(buf); cap(p.arena) < need {
		p.arena = make([]byte, 0, need+64)
	} else {
		p.arena = p.arena[:0]
	}
}

func (p *jparser) syntaxErr(msg string) error {
	return fmt.Errorf("invalid JSON at offset %d: %s", p.pos, msg)
}

func (p *jparser) skipWS() {
	for p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// lit consumes the exact literal s if present.
func (p *jparser) lit(s string) bool {
	if len(p.buf)-p.pos < len(s) {
		return false
	}
	if string(p.buf[p.pos:p.pos+len(s)]) != s {
		return false
	}
	p.pos += len(s)
	return true
}

// tryNull consumes a null literal, reporting whether it did.
func (p *jparser) tryNull() bool {
	p.skipWS()
	return p.pos < len(p.buf) && p.buf[p.pos] == 'n' && p.lit("null")
}

// doc parses one top-level document whose value, when present, must be an
// object dispatched through field. An empty (or whitespace-only) body and a
// top-level null are accepted as no-ops — json.Decoder.Decode tolerated
// the former (io.EOF) and json.Unmarshal the latter.
func (p *jparser) doc(field func(key []byte) error) error {
	p.skipWS()
	if p.pos >= len(p.buf) {
		return nil
	}
	if p.buf[p.pos] == 'n' {
		if !p.lit("null") {
			return p.syntaxErr("invalid literal")
		}
		// json.Decoder.Decode reads exactly one value: the literal is
		// complete at its last byte and whatever follows — even fused
		// letters, as in "nullx" — is left unread, not an error.
		return nil
	}
	return p.object(field)
}

// object parses {"key": value, ...} dispatching each key through field,
// which must consume the value (typed field parsers or skipValue).
func (p *jparser) object(field func(key []byte) error) error {
	p.skipWS()
	if p.pos >= len(p.buf) {
		return errUnexpectedEnd
	}
	if p.buf[p.pos] != '{' {
		return p.syntaxErr("expected object")
	}
	p.pos++
	p.depth++
	if p.depth > maxNestingDepth {
		return errTooDeep
	}
	defer func() { p.depth-- }()
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == '}' {
		p.pos++
		return nil
	}
	for {
		p.skipWS()
		key, err := p.parseString()
		if err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) || p.buf[p.pos] != ':' {
			return p.syntaxErr("expected ':' after object key")
		}
		p.pos++
		if err := field(key); err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) {
			return errUnexpectedEnd
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
		case '}':
			p.pos++
			return nil
		default:
			return p.syntaxErr("expected ',' or '}' in object")
		}
	}
}

// parseString parses a JSON string, returning a view into the body when the
// raw bytes are clean ASCII, or into the arena after unescaping otherwise.
// Semantics match encoding/json's unquote: \uXXXX with surrogate pairing,
// unpaired surrogates and invalid UTF-8 become U+FFFD, control characters
// are rejected.
func (p *jparser) parseString() ([]byte, error) {
	buf := p.buf
	if p.pos >= len(buf) || buf[p.pos] != '"' {
		return nil, p.syntaxErr("expected string")
	}
	p.pos++
	start := p.pos
	i := p.pos
	for i < len(buf) {
		c := buf[i]
		if c == '"' {
			p.pos = i + 1
			return buf[start:i], nil
		}
		if c == '\\' || c >= utf8.RuneSelf {
			break
		}
		if c < 0x20 {
			p.pos = i
			return nil, p.syntaxErr("control character in string")
		}
		i++
	}
	if i >= len(buf) {
		return nil, errUnexpectedEnd
	}
	// Slow path: unescape into the arena (append-only; begin sized it so it
	// never reallocates, keeping previously returned views valid).
	out := len(p.arena)
	p.arena = append(p.arena, buf[start:i]...)
	for i < len(buf) {
		c := buf[i]
		switch {
		case c == '"':
			p.pos = i + 1
			return p.arena[out:len(p.arena):len(p.arena)], nil
		case c == '\\':
			i++
			if i >= len(buf) {
				return nil, errUnexpectedEnd
			}
			switch buf[i] {
			case '"', '\\', '/':
				p.arena = append(p.arena, buf[i])
				i++
			case 'b':
				p.arena = append(p.arena, '\b')
				i++
			case 'f':
				p.arena = append(p.arena, '\f')
				i++
			case 'n':
				p.arena = append(p.arena, '\n')
				i++
			case 'r':
				p.arena = append(p.arena, '\r')
				i++
			case 't':
				p.arena = append(p.arena, '\t')
				i++
			case 'u':
				rr := getu4(buf[i+1:])
				if rr < 0 {
					p.pos = i
					return nil, p.syntaxErr("invalid \\u escape")
				}
				i += 5
				if utf16.IsSurrogate(rr) {
					// A following \uXXXX may complete the pair; anything
					// else leaves an unpaired surrogate → U+FFFD, with the
					// follower (if any) processed on its own.
					var rr1 rune = -1
					if i+1 < len(buf) && buf[i] == '\\' && buf[i+1] == 'u' {
						rr1 = getu4(buf[i+2:])
					}
					if rr1 >= 0 {
						if dec := utf16.DecodeRune(rr, rr1); dec != unicode.ReplacementChar {
							i += 6
							p.arena = utf8.AppendRune(p.arena, dec)
							break
						}
					}
					rr = unicode.ReplacementChar
				}
				p.arena = utf8.AppendRune(p.arena, rr)
			default:
				p.pos = i
				return nil, p.syntaxErr("invalid escape character")
			}
		case c < 0x20:
			p.pos = i
			return nil, p.syntaxErr("control character in string")
		case c < utf8.RuneSelf:
			p.arena = append(p.arena, c)
			i++
		default:
			r, size := utf8.DecodeRune(buf[i:])
			if r == utf8.RuneError && size == 1 {
				p.arena = utf8.AppendRune(p.arena, utf8.RuneError)
				i++
			} else {
				p.arena = append(p.arena, buf[i:i+size]...)
				i += size
			}
		}
	}
	return nil, errUnexpectedEnd
}

// getu4 decodes the four hex digits of a \uXXXX escape; -1 if malformed.
func getu4(b []byte) rune {
	if len(b) < 4 {
		return -1
	}
	var r rune
	for _, c := range b[:4] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// skipString validates a string without materializing it.
func (p *jparser) skipString() error {
	buf := p.buf
	if p.pos >= len(buf) || buf[p.pos] != '"' {
		return p.syntaxErr("expected string")
	}
	i := p.pos + 1
	for i < len(buf) {
		switch c := buf[i]; {
		case c == '"':
			p.pos = i + 1
			return nil
		case c == '\\':
			i++
			if i >= len(buf) {
				return errUnexpectedEnd
			}
			switch buf[i] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				i++
			case 'u':
				if getu4(buf[i+1:]) < 0 {
					p.pos = i
					return p.syntaxErr("invalid \\u escape")
				}
				i += 5
			default:
				p.pos = i
				return p.syntaxErr("invalid escape character")
			}
		case c < 0x20:
			p.pos = i
			return p.syntaxErr("control character in string")
		default:
			i++
		}
	}
	return errUnexpectedEnd
}

// scanNumber consumes one number token, enforcing the JSON grammar (which
// is stricter than strconv's: no leading zeros, no bare '.', no '+').
func (p *jparser) scanNumber() ([]byte, error) {
	buf := p.buf
	start := p.pos
	i := p.pos
	if i < len(buf) && buf[i] == '-' {
		i++
	}
	switch {
	case i >= len(buf):
		return nil, errUnexpectedEnd
	case buf[i] == '0':
		i++
	case '1' <= buf[i] && buf[i] <= '9':
		i++
		for i < len(buf) && '0' <= buf[i] && buf[i] <= '9' {
			i++
		}
	default:
		p.pos = i
		return nil, p.syntaxErr("invalid number")
	}
	if i < len(buf) && buf[i] == '.' {
		i++
		if i >= len(buf) || buf[i] < '0' || buf[i] > '9' {
			p.pos = i
			return nil, p.syntaxErr("invalid number: digit required after '.'")
		}
		for i < len(buf) && '0' <= buf[i] && buf[i] <= '9' {
			i++
		}
	}
	if i < len(buf) && (buf[i] == 'e' || buf[i] == 'E') {
		i++
		if i < len(buf) && (buf[i] == '+' || buf[i] == '-') {
			i++
		}
		if i >= len(buf) || buf[i] < '0' || buf[i] > '9' {
			p.pos = i
			return nil, p.syntaxErr("invalid number: digit required in exponent")
		}
		for i < len(buf) && '0' <= buf[i] && buf[i] <= '9' {
			i++
		}
	}
	p.pos = i
	return buf[start:i], nil
}

// skipValue validates and discards one value of any type.
func (p *jparser) skipValue() error {
	p.skipWS()
	if p.pos >= len(p.buf) {
		return errUnexpectedEnd
	}
	switch c := p.buf[p.pos]; {
	case c == '{':
		return p.object(func([]byte) error { return p.skipValue() })
	case c == '[':
		return p.array(func() error { return p.skipValue() })
	case c == '"':
		return p.skipString()
	case c == 't':
		if !p.lit("true") {
			return p.syntaxErr("invalid literal")
		}
		return nil
	case c == 'f':
		if !p.lit("false") {
			return p.syntaxErr("invalid literal")
		}
		return nil
	case c == 'n':
		if !p.lit("null") {
			return p.syntaxErr("invalid literal")
		}
		return nil
	default:
		_, err := p.scanNumber()
		return err
	}
}

// array parses [elem, ...], calling elem for each element.
func (p *jparser) array(elem func() error) error {
	p.skipWS()
	if p.pos >= len(p.buf) || p.buf[p.pos] != '[' {
		return p.syntaxErr("expected array")
	}
	p.pos++
	p.depth++
	if p.depth > maxNestingDepth {
		return errTooDeep
	}
	defer func() { p.depth-- }()
	p.skipWS()
	if p.pos < len(p.buf) && p.buf[p.pos] == ']' {
		p.pos++
		return nil
	}
	for {
		if err := elem(); err != nil {
			return err
		}
		p.skipWS()
		if p.pos >= len(p.buf) {
			return errUnexpectedEnd
		}
		switch p.buf[p.pos] {
		case ',':
			p.pos++
		case ']':
			p.pos++
			return nil
		default:
			return p.syntaxErr("expected ',' or ']' in array")
		}
	}
}

// --- typed field parsers (null is a no-op for every field, as in
// encoding/json) ---

func (p *jparser) floatField(dst *float64) error {
	if p.tryNull() {
		return nil
	}
	tok, err := p.scanNumber()
	if err != nil {
		return err
	}
	f, err := parseJSONFloat(tok)
	if err != nil {
		return err
	}
	*dst = f
	return nil
}

func (p *jparser) intField(dst *int) error {
	if p.tryNull() {
		return nil
	}
	tok, err := p.scanNumber()
	if err != nil {
		return err
	}
	n, err := parseJSONInt(tok)
	if err != nil {
		return err
	}
	*dst = int(n)
	return nil
}

func (p *jparser) uint64Field(dst *uint64) error {
	if p.tryNull() {
		return nil
	}
	tok, err := p.scanNumber()
	if err != nil {
		return err
	}
	n, err := parseJSONUint(tok)
	if err != nil {
		return err
	}
	*dst = n
	return nil
}

func (p *jparser) boolField(dst *bool) error {
	if p.tryNull() {
		return nil
	}
	p.skipWS()
	if p.pos < len(p.buf) {
		switch p.buf[p.pos] {
		case 't':
			if p.lit("true") {
				*dst = true
				return nil
			}
		case 'f':
			if p.lit("false") {
				*dst = false
				return nil
			}
		}
	}
	return p.syntaxErr("expected boolean")
}

func (p *jparser) stringField(dst *[]byte) error {
	if p.tryNull() {
		return nil
	}
	p.skipWS()
	s, err := p.parseString()
	if err != nil {
		return err
	}
	*dst = s
	return nil
}

// --- number parsing ---

// pow10 holds the exactly-representable powers of ten (Clinger's range).
var pow10 = [23]float64{
	1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseJSONFloat converts a grammar-validated number token. The fast path
// is Clinger's exact algorithm: when the decimal mantissa fits 2⁵³ and the
// decimal exponent is within ±22, float64(m)·10^e rounds exactly once, so
// the result is bit-identical to strconv.ParseFloat. Everything else (>19
// significant digits, extreme exponents) falls back to strconv, which
// allocates — acceptably, since such numbers never appear on real traffic.
func parseJSONFloat(tok []byte) (float64, error) {
	i := 0
	neg := false
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	var m uint64
	digits := 0
	exp10 := 0
	trunc := false
	for ; i < len(tok); i++ {
		c := tok[i]
		if c == '.' || c == 'e' || c == 'E' {
			break
		}
		if trunc {
			exp10++ // dropped integer digit: scale up
			continue
		}
		if m > (math.MaxUint64-9)/10 {
			trunc = true
			exp10++
			continue
		}
		m = m*10 + uint64(c-'0')
		if m != 0 {
			digits++
		}
	}
	if i < len(tok) && tok[i] == '.' {
		i++
		for ; i < len(tok); i++ {
			c := tok[i]
			if c == 'e' || c == 'E' {
				break
			}
			if trunc {
				continue // dropped fraction digit: no scale change
			}
			if m > (math.MaxUint64-9)/10 {
				trunc = true
				continue
			}
			m = m*10 + uint64(c-'0')
			exp10--
			if m != 0 {
				digits++
			}
		}
	}
	if i < len(tok) {
		// tok[i] is e or E; the grammar guarantees digits follow.
		i++
		esign := 1
		if tok[i] == '+' {
			i++
		} else if tok[i] == '-' {
			esign = -1
			i++
		}
		e := 0
		for ; i < len(tok); i++ {
			if e < 100000 {
				e = e*10 + int(tok[i]-'0')
			}
		}
		exp10 += esign * e
	}
	if m == 0 {
		if neg {
			return math.Copysign(0, -1), nil
		}
		return 0, nil
	}
	if !trunc && digits <= 19 && m < 1<<53 && exp10 >= -22 && exp10 <= 22 {
		f := float64(m)
		if exp10 > 0 {
			f *= pow10[exp10]
		} else if exp10 < 0 {
			f /= pow10[-exp10]
		}
		if neg {
			f = -f
		}
		return f, nil
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		// Out of float64 range: encoding/json rejects these too.
		return 0, fmt.Errorf("number %s out of range", tok)
	}
	return f, nil
}

// parseJSONInt converts a grammar-validated number token to int64 exactly
// as encoding/json does (ParseInt on the literal): fractions, exponents and
// overflow are errors.
func parseJSONInt(tok []byte) (int64, error) {
	i := 0
	neg := false
	if tok[0] == '-' {
		neg = true
		i = 1
	}
	var n uint64
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("number %s is not an integer", tok)
		}
		if n > math.MaxUint64/10 || (n == math.MaxUint64/10 && c > '5') {
			return 0, fmt.Errorf("number %s overflows int64", tok)
		}
		n = n*10 + uint64(c-'0')
	}
	if neg {
		if n > 1<<63 {
			return 0, fmt.Errorf("number %s overflows int64", tok)
		}
		return -int64(n), nil
	}
	if n >= 1<<63 {
		return 0, fmt.Errorf("number %s overflows int64", tok)
	}
	return int64(n), nil
}

// parseJSONUint converts a grammar-validated number token to uint64 (for
// lease IDs); negatives, fractions, exponents and overflow are errors.
func parseJSONUint(tok []byte) (uint64, error) {
	if tok[0] == '-' {
		return 0, fmt.Errorf("number %s is negative", tok)
	}
	var n uint64
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("number %s is not an integer", tok)
		}
		if n > math.MaxUint64/10 || (n == math.MaxUint64/10 && c > '5') {
			return 0, fmt.Errorf("number %s overflows uint64", tok)
		}
		n = n*10 + uint64(c-'0')
	}
	return n, nil
}

// --- field-name matching ---

// keyIs matches a decoded object key against a field tag the way
// encoding/json does: exact match, else simple Unicode case-folding.
func keyIs(key []byte, name string) bool {
	if string(key) == name { // compiler-optimized: no allocation
		return true
	}
	return eqFold(key, name)
}

// eqFold is bytes.EqualFold against a string, allocation-free.
func eqFold(b []byte, s string) bool {
	for len(b) > 0 && len(s) > 0 {
		var rb, rs rune
		if b[0] < utf8.RuneSelf {
			rb, b = rune(b[0]), b[1:]
		} else {
			r, size := utf8.DecodeRune(b)
			rb, b = r, b[size:]
		}
		if s[0] < utf8.RuneSelf {
			rs, s = rune(s[0]), s[1:]
		} else {
			r, size := utf8.DecodeRuneInString(s)
			rs, s = r, s[size:]
		}
		if rb == rs {
			continue
		}
		// Fold both to the minimum rune of their fold set and compare.
		if foldRune(rb) != foldRune(rs) {
			return false
		}
	}
	return len(b) == 0 && len(s) == 0
}

// foldRune maps r to the smallest rune in its case-fold set.
func foldRune(r rune) rune {
	for {
		r2 := unicode.SimpleFold(r)
		if r2 <= r {
			return r2
		}
		r = r2
	}
}

// --- request decoders ---

// acquireWire is the decoded acquire body: views into the parser's buffers,
// valid until the next begin.
type acquireWire struct {
	client []byte
	kind   []byte
}

func (p *jparser) decodeAcquire(out *acquireWire) error {
	return p.doc(func(key []byte) error {
		switch {
		case keyIs(key, "client"):
			return p.stringField(&out.client)
		case keyIs(key, "kind"):
			return p.stringField(&out.kind)
		default:
			return p.skipValue()
		}
	})
}

// decodeUsageFields dispatches one usageReport key; shared between the
// single-op renew body and the nested report object in batch ops.
func (p *jparser) decodeUsageFields(rep *usageReport, key []byte) error {
	switch {
	case keyIs(key, "cpu_ms"):
		return p.floatField(&rep.CPUMS)
	case keyIs(key, "used_ms"):
		return p.floatField(&rep.UsedMS)
	case keyIs(key, "request_ms"):
		return p.floatField(&rep.RequestMS)
	case keyIs(key, "failed_request_ms"):
		return p.floatField(&rep.FailedRequestMS)
	case keyIs(key, "data_points"):
		return p.intField(&rep.DataPoints)
	case keyIs(key, "distance_m"):
		return p.floatField(&rep.DistanceM)
	case keyIs(key, "ui_updates"):
		return p.intField(&rep.UIUpdates)
	case keyIs(key, "interactions"):
		return p.intField(&rep.Interactions)
	case keyIs(key, "exceptions"):
		return p.intField(&rep.Exceptions)
	default:
		return p.skipValue()
	}
}

func (p *jparser) decodeUsage(rep *usageReport) error {
	return p.doc(func(key []byte) error { return p.decodeUsageFields(rep, key) })
}

// --- append-style encoders ---

// appendJSONString appends s as a JSON string, byte-identical to
// encoding/json's default (HTML-escaping) encoder: \n \r \t mnemonics,
// \u00xx for other control characters, </>/& for <>&,
// U+FFFD for invalid UTF-8,  /  escaped.
func appendJSONString(b []byte, s string) []byte {
	const hexDigits = "0123456789abcdef"
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			// Invalid UTF-8 becomes the six-byte � escape, not a
			// literal replacement rune — a valid U+FFFD passes verbatim.
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == ' ' || r == ' ' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f exactly as encoding/json formats float64:
// shortest representation, 'e' only outside [1e-6, 1e21), with the
// two-digit negative exponent un-padded. Non-finite values cannot reach
// the wire — every float the daemon emits originated in a decode that
// rejects them — and encode as 0 defensively.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return append(b, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendLeaseResponse appends r encoded byte-identically to json.Marshal.
func appendLeaseResponse(b []byte, r *leaseResponse) []byte {
	b = append(b, `{"lease_id":`...)
	b = strconv.AppendUint(b, r.LeaseID, 10)
	b = append(b, `,"client":`...)
	b = appendJSONString(b, r.Client)
	b = append(b, `,"uid":`...)
	b = strconv.AppendInt(b, int64(r.UID), 10)
	b = append(b, `,"shard":`...)
	b = strconv.AppendInt(b, int64(r.Shard), 10)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, r.Kind)
	b = append(b, `,"state":`...)
	b = appendJSONString(b, r.State)
	b = append(b, `,"held":`...)
	b = strconv.AppendBool(b, r.Held)
	b = append(b, `,"terms":`...)
	b = strconv.AppendInt(b, int64(r.Terms), 10)
	b = append(b, `,"term_ms":`...)
	b = strconv.AppendInt(b, r.TermMS, 10)
	b = append(b, `,"acquires":`...)
	b = strconv.AppendInt(b, r.Acquires, 10)
	if r.Explain != "" {
		b = append(b, `,"explain":`...)
		b = appendJSONString(b, r.Explain)
	}
	return append(b, '}')
}

// appendErrorResponse appends {"error": msg} byte-identically to
// json.Marshal(errorResponse{...}).
func appendErrorResponse(b []byte, msg string) []byte {
	b = append(b, `{"error":`...)
	b = appendJSONString(b, msg)
	return append(b, '}')
}

// appendUsageReport appends rep with per-field omitempty, byte-identical
// to json.Marshal. Note omitempty drops -0.0 as well (it compares == 0),
// exactly as encoding/json does.
func appendUsageReport(b []byte, rep *usageReport) []byte {
	b = append(b, '{')
	n := len(b)
	if rep.CPUMS != 0 {
		b = append(b, `"cpu_ms":`...)
		b = appendJSONFloat(b, rep.CPUMS)
	}
	comma := func(b []byte) []byte {
		if len(b) > n {
			return append(b, ',')
		}
		return b
	}
	if rep.UsedMS != 0 {
		b = comma(b)
		b = append(b, `"used_ms":`...)
		b = appendJSONFloat(b, rep.UsedMS)
	}
	if rep.RequestMS != 0 {
		b = comma(b)
		b = append(b, `"request_ms":`...)
		b = appendJSONFloat(b, rep.RequestMS)
	}
	if rep.FailedRequestMS != 0 {
		b = comma(b)
		b = append(b, `"failed_request_ms":`...)
		b = appendJSONFloat(b, rep.FailedRequestMS)
	}
	if rep.DataPoints != 0 {
		b = comma(b)
		b = append(b, `"data_points":`...)
		b = strconv.AppendInt(b, int64(rep.DataPoints), 10)
	}
	if rep.DistanceM != 0 {
		b = comma(b)
		b = append(b, `"distance_m":`...)
		b = appendJSONFloat(b, rep.DistanceM)
	}
	if rep.UIUpdates != 0 {
		b = comma(b)
		b = append(b, `"ui_updates":`...)
		b = strconv.AppendInt(b, int64(rep.UIUpdates), 10)
	}
	if rep.Interactions != 0 {
		b = comma(b)
		b = append(b, `"interactions":`...)
		b = strconv.AppendInt(b, int64(rep.Interactions), 10)
	}
	if rep.Exceptions != 0 {
		b = comma(b)
		b = append(b, `"exceptions":`...)
		b = strconv.AppendInt(b, int64(rep.Exceptions), 10)
	}
	return append(b, '}')
}

// appendOpRecord appends rec encoded byte-identically to json.Marshal, so
// journal frames written by the fast path remain plain JSON that replay's
// json.Unmarshal (and any external tool) reads back.
func appendOpRecord(b []byte, rec *opRecord) []byte {
	b = append(b, `{"at":`...)
	b = strconv.AppendInt(b, int64(rec.At), 10)
	b = append(b, `,"op":`...)
	b = appendJSONString(b, rec.Op)
	if rec.Client != "" {
		b = append(b, `,"client":`...)
		b = appendJSONString(b, rec.Client)
	}
	if rec.Kind != "" {
		b = append(b, `,"kind":`...)
		b = appendJSONString(b, rec.Kind)
	}
	if rec.LeaseID != 0 {
		b = append(b, `,"lease_id":`...)
		b = strconv.AppendUint(b, rec.LeaseID, 10)
	}
	if rec.Destroy {
		b = append(b, `,"destroy":true`...)
	}
	if rec.Report != nil {
		b = append(b, `,"report":`...)
		b = appendUsageReport(b, rec.Report)
	}
	if rec.ReqID != "" {
		b = append(b, `,"req_id":`...)
		b = appendJSONString(b, rec.ReqID)
	}
	return append(b, '}')
}

// --- pooled per-request scratch ---

// opEnv is the single-op hot path's per-request scratch: body buffer,
// parser (with its unescape arena), decoded record, and response build
// buffer. One env cycles through the pool per request; in steady state the
// whole decode → apply → encode path performs zero heap allocations.
type opEnv struct {
	p    jparser
	body []byte // request body accumulation buffer
	out  []byte // response build buffer

	rec opRecord
	rep usageReport

	// result is what the handler writes: out for fresh responses, or a
	// stable cache-owned slice for deduped replays.
	result  []byte
	status  int
	deduped bool
}

var opEnvPool = sync.Pool{New: func() any { return new(opEnv) }}

func getOpEnv() *opEnv {
	return opEnvPool.Get().(*opEnv)
}

func putOpEnv(e *opEnv) {
	// Drop references into request-scoped data; keep the buffers.
	e.rec = opRecord{}
	e.rep = usageReport{}
	e.result = nil
	e.status = 0
	e.deduped = false
	e.p.buf = nil
	opEnvPool.Put(e)
}
