//go:build race

package leased

// Under the race detector sync.Pool deliberately drops and bypasses entries
// to diversify schedules, so pooled-buffer allocation pins are meaningless
// there; the alloc tests skip themselves.
const raceEnabled = true
