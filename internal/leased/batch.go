package leased

// POST /v1/batch: many lease operations in one request. The endpoint exists
// to amortize the daemon's per-op fixed costs — one HTTP request, one body
// parse, one Wall.Do crossing per shard touched, and one durable journal
// frame per shard group instead of one of each per op.
//
// Semantics:
//
//   - Ops execute grouped by owning shard (ascending shard order; request
//     order within a group), each group inside a single clock section, so
//     every op in a group applies at the same frozen virtual instant.
//   - Results come back in request order, one per op, each carrying its own
//     status: a failed op does not fail the batch.
//   - Per-op req_id fields hit the same per-shard dedup cache the
//     X-Request-ID header feeds, so retried batches (or singles retried as
//     batches, and vice versa) never double-apply.
//   - Durability is atomic per shard group: a group's successful ops are
//     journaled as one batch frame (durable.AppendBatch), so a crash
//     replays all of them or none. Ops for different shards live in
//     different journals, so a crash can persist one shard's group and not
//     another's — callers that need cross-shard atomicity must not spread
//     a dependent group across clients.

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// batchMaxBodyBytes bounds a batch request body. Larger than the single-op
// limit — that is the point — but still small enough to keep pooled buffers
// (body, arena, response) bounded.
const batchMaxBodyBytes = 256 << 10

// maxBatchOps bounds how many ops one batch may carry.
const maxBatchOps = 4096

// batchOp is one decoded batch operation plus its routing and outcome. The
// byte-slice fields are views into the batch env's body/arena, valid until
// the response is written.
type batchOp struct {
	opName  []byte
	client  []byte
	kindRaw []byte
	wire    uint64
	destroy bool
	report  usageReport
	hasRep  bool
	reqID   []byte

	// resolved by routing
	op     string // canonical static: "acquire" | "renew" | "release"
	kind   string // canonical static kind name (acquire)
	local  uint64 // shard-local lease ID (renew/release)
	shard  int32
	routed bool

	// outcome
	status    int
	errMsg    string
	deduped   bool
	dedupBody []byte // cache-owned single-op lease body (dedup hits)
	resp      leaseResponse
}

func (op *batchOp) fail(status int, msg string) {
	op.status, op.errMsg = status, msg
}

// batchEnv is the pooled per-request scratch for the batch path: one body
// buffer, one parser, the decoded op table, the shard-grouping index and
// the journal/response build buffers. Everything is reused; a steady-state
// batch of renews performs O(1) allocations regardless of op count.
type batchEnv struct {
	p    jparser
	body []byte
	out  []byte

	ops []batchOp
	rec opRecord // per-op journal record scratch (reused within a group)

	counts [MaxShards]int32 // ops per shard (routed only)
	starts [MaxShards]int32 // group offsets into idx
	idx    []int32          // op indices, grouped by shard, request order within

	jbuf   []byte   // journal batch-frame build buffer
	spans  [][2]int // per-record spans into jbuf
	frames [][]byte // views over jbuf handed to AppendBatch
}

var batchEnvPool = sync.Pool{New: func() any { return new(batchEnv) }}

func getBatchEnv() *batchEnv {
	return batchEnvPool.Get().(*batchEnv)
}

func putBatchEnv(e *batchEnv) {
	// Release references into request-scoped data; keep every buffer.
	for i := range e.ops {
		e.ops[i] = batchOp{}
	}
	e.ops = e.ops[:0]
	e.rec = opRecord{}
	e.p.buf = nil
	batchEnvPool.Put(e)
}

// decodeOp parses one member of the "ops" array into a fresh slot.
func (e *batchEnv) decodeOp() error {
	if len(e.ops) >= maxBatchOps {
		return fmt.Errorf("batch exceeds %d ops", maxBatchOps)
	}
	if n := len(e.ops); cap(e.ops) > n {
		e.ops = e.ops[:n+1]
		e.ops[n] = batchOp{}
	} else {
		e.ops = append(e.ops, batchOp{})
	}
	op := &e.ops[len(e.ops)-1]
	return e.p.object(func(key []byte) error {
		switch {
		case keyIs(key, "op"):
			return e.p.stringField(&op.opName)
		case keyIs(key, "client"):
			return e.p.stringField(&op.client)
		case keyIs(key, "kind"):
			return e.p.stringField(&op.kindRaw)
		case keyIs(key, "lease_id"):
			return e.p.uint64Field(&op.wire)
		case keyIs(key, "destroy"):
			return e.p.boolField(&op.destroy)
		case keyIs(key, "req_id"):
			return e.p.stringField(&op.reqID)
		case keyIs(key, "report"):
			if e.p.tryNull() {
				return nil
			}
			op.hasRep = true
			return e.p.object(func(k []byte) error {
				return e.p.decodeUsageFields(&op.report, k)
			})
		default:
			return e.p.skipValue()
		}
	})
}

// routeBatch resolves every op to its shard, validating as the single-op
// handlers do. Invalid ops get their error outcome here and are skipped by
// the apply stage; they never abort the batch.
func (s *Server) routeBatchOps(env *batchEnv) {
	for i := range env.ops {
		op := &env.ops[i]
		switch {
		case string(op.opName) == "acquire":
			op.op = "acquire"
			if len(op.client) == 0 || len(op.client) > 128 {
				op.fail(http.StatusBadRequest, "client must be a non-empty name (≤128 chars)")
				continue
			}
			k, ok := kindFromBytes(op.kindRaw)
			if !ok {
				op.fail(http.StatusBadRequest, fmt.Sprintf("unknown resource kind %q", op.kindRaw))
				continue
			}
			op.kind = k.String()
			op.shard = int32(shardIndexBytes(op.client, len(s.shards)))
		case string(op.opName) == "renew" || string(op.opName) == "release":
			if string(op.opName) == "renew" {
				op.op = "renew"
			} else {
				op.op = "release"
			}
			_, local, ok := s.shardByWireID(op.wire)
			if !ok {
				op.fail(http.StatusNotFound, "unknown or dead lease")
				continue
			}
			idx, _ := decodeLeaseID(op.wire)
			op.local, op.shard = local, int32(idx)
		default:
			op.fail(http.StatusBadRequest, fmt.Sprintf("unknown op %q", op.opName))
			continue
		}
		if len(op.reqID) > 128 {
			op.fail(http.StatusBadRequest, "req_id exceeds 128 bytes")
			continue
		}
		op.routed = true
	}
}

// groupByShard counting-sorts routed op indices by shard (stable: request
// order survives within each group).
func (env *batchEnv) groupByShard(shards int) {
	for i := 0; i < shards; i++ {
		env.counts[i] = 0
	}
	for i := range env.ops {
		if env.ops[i].routed {
			env.counts[env.ops[i].shard]++
		}
	}
	var sum int32
	for i := 0; i < shards; i++ {
		env.starts[i] = sum
		sum += env.counts[i]
	}
	if cap(env.idx) < int(sum) {
		env.idx = make([]int32, sum)
	} else {
		env.idx = env.idx[:sum]
	}
	cursor := env.starts // copy (arrays copy by value)
	for i := range env.ops {
		op := &env.ops[i]
		if op.routed {
			env.idx[cursor[op.shard]] = int32(i)
			cursor[op.shard]++
		}
	}
}

// applyBatchGroup executes one shard's ops inside a single clock section —
// every op in the group applies at the same frozen instant — and journals
// the group's successful ops as one atomic batch frame.
func (sh *shard) applyBatchGroup(env *batchEnv, group []int32) {
	sh.do(func() {
		now := sh.clock.Now()
		env.jbuf = env.jbuf[:0]
		env.spans = env.spans[:0]
		for _, i := range group {
			op := &env.ops[i]
			if len(op.reqID) > 0 {
				if raw, ok := sh.dedup.get(string(op.reqID)); ok {
					sh.metrics.deduped.Add(1)
					op.status, op.deduped, op.dedupBody = http.StatusOK, true, raw
					continue
				}
			}
			rec := &env.rec
			*rec = opRecord{At: now, Op: op.op}
			switch op.op {
			case "acquire":
				rec.Client, rec.Kind = string(op.client), op.kind
			case "renew":
				rec.LeaseID = op.local
				if op.hasRep {
					rec.Report = &op.report
				}
			case "release":
				rec.LeaseID, rec.Destroy = op.local, op.destroy
			}
			if len(op.reqID) > 0 {
				rec.ReqID = string(op.reqID)
			}
			status, resp, errMsg := sh.applyRecord(rec)
			op.status = status
			if status != http.StatusOK {
				op.errMsg = errMsg
				continue
			}
			op.resp = resp
			if sh.store != nil || sh.repl != nil {
				start := len(env.jbuf)
				env.jbuf = appendOpRecord(env.jbuf, rec)
				env.spans = append(env.spans, [2]int{start, len(env.jbuf)})
			}
			if rec.ReqID != "" {
				// Same cache entry a single-op request would store: the
				// plain lease body. A single-op retry of a batched op (or
				// the reverse) dedups cleanly.
				sh.dedup.put(rec.ReqID, appendLeaseResponse(nil, &resp))
			}
		}
		if (sh.store != nil || sh.repl != nil) && len(env.spans) > 0 {
			env.frames = env.frames[:0]
			for _, sp := range env.spans {
				env.frames = append(env.frames, env.jbuf[sp[0]:sp[1]])
			}
			if sh.repl != nil {
				// One atomic frame on the wire, mirroring the one batch
				// frame on disk: followers replay the whole group at one
				// instant or not at all.
				sh.repl.PublishBatch(env.frames)
			}
			if sh.store != nil {
				if err := sh.store.AppendBatch(env.frames); err != nil {
					sh.metrics.journalErrors.Add(1)
				} else if sh.store.SinceCheckpoint() >= sh.opts.SnapshotEvery {
					sh.checkpointLocked()
				}
			}
		}
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	env := getBatchEnv()
	defer putBatchEnv(env)
	body, err := readBody(r, &env.body, batchMaxBodyBytes)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	env.p.begin(body)
	env.ops = env.ops[:0]
	perr := env.p.doc(func(key []byte) error {
		if keyIs(key, "ops") {
			if env.p.tryNull() {
				return nil
			}
			return env.p.array(env.decodeOp)
		}
		return env.p.skipValue()
	})
	if perr != nil {
		writeBodyError(w, perr)
		return
	}
	s.routeBatchOps(env)
	env.groupByShard(len(s.shards))
	for shardID := 0; shardID < len(s.shards); shardID++ {
		n := int(env.counts[shardID])
		if n == 0 {
			continue
		}
		start := int(env.starts[shardID])
		s.shards[shardID].applyBatchGroup(env, env.idx[start:start+n])
	}
	// Results in request order. Cross-shard batches bill to the unrouted
	// histograms (no single shard owns the request).
	b := env.out[:0]
	b = append(b, `{"results":[`...)
	for i := range env.ops {
		if i > 0 {
			b = append(b, ',')
		}
		op := &env.ops[i]
		b = append(b, `{"status":`...)
		b = strconv.AppendInt(b, int64(op.status), 10)
		if op.status == http.StatusOK {
			if op.deduped {
				b = append(b, `,"deduped":true,"lease":`...)
				b = append(b, op.dedupBody...)
			} else {
				b = append(b, `,"lease":`...)
				b = appendLeaseResponse(b, &op.resp)
			}
		} else {
			b = append(b, `,"error":`...)
			b = appendJSONString(b, op.errMsg)
		}
		b = append(b, '}')
	}
	b = append(b, ']', '}', '\n')
	env.out = b
	setHeader(w.Header(), "Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}
