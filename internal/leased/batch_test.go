package leased

// Functional and crash-equality coverage for POST /v1/batch: request-order
// results, per-op failure isolation, dedup interop with the single-op
// routes, per-shard-group journal atomicity, and replay equivalence.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// batchResult is one member of the endpoint's results array.
type batchResult struct {
	Status  int            `json:"status"`
	Deduped bool           `json:"deduped"`
	Lease   *leaseResponse `json:"lease"`
	Error   string         `json:"error"`
}

type batchResponse struct {
	Results []batchResult `json:"results"`
}

func (r *rig) batch(ops []map[string]any) batchResponse {
	r.t.Helper()
	var out batchResponse
	if code := r.call("POST", "/v1/batch", map[string]any{"ops": ops}, &out); code != 200 {
		r.t.Fatalf("batch: status %d", code)
	}
	if len(out.Results) != len(ops) {
		r.t.Fatalf("batch: %d results for %d ops", len(out.Results), len(ops))
	}
	return out
}

func TestBatchMixedOpsResultsInRequestOrder(t *testing.T) {
	r := newRig(t, func() Options { o := testOptions(); o.Shards = 4; return o }())
	alice := r.acquire("alice", "wakelock")

	out := r.batch([]map[string]any{
		{"op": "acquire", "client": "bob", "kind": "gps"},
		{"op": "renew", "lease_id": alice.LeaseID, "report": map[string]any{"cpu_ms": 2, "ui_updates": 1}},
		{"op": "nonsense"},
		{"op": "acquire", "client": "carol", "kind": "sensor"},
		{"op": "renew", "lease_id": 999999},
		{"op": "acquire", "client": "", "kind": "wakelock"},
		{"op": "acquire", "client": "dave", "kind": "no-such-kind"},
		{"op": "release", "lease_id": alice.LeaseID},
	})

	wantStatus := []int{200, 200, 400, 200, 404, 400, 400, 200}
	for i, res := range out.Results {
		if res.Status != wantStatus[i] {
			t.Errorf("result %d: status %d, want %d (error %q)", i, res.Status, wantStatus[i], res.Error)
		}
		if (res.Status == 200) != (res.Lease != nil) {
			t.Errorf("result %d: lease presence mismatches status %d", i, res.Status)
		}
		if res.Status != 200 && res.Error == "" {
			t.Errorf("result %d: failed without an error message", i)
		}
	}
	if got := out.Results[0].Lease.Client; got != "bob" {
		t.Errorf("result 0 client = %q, want bob", got)
	}
	if got := out.Results[1].Lease.Client; got != "alice" {
		t.Errorf("result 1 client = %q, want alice", got)
	}
	if st := out.Results[7].Lease.Held; st {
		t.Errorf("result 7: lease still held after release")
	}

	// The failed ops must not have changed server state: only alice, bob,
	// carol exist.
	snap := r.s.snapshot()
	if snap.Clients != 3 {
		t.Errorf("clients = %d after batch, want 3", snap.Clients)
	}
}

// TestBatchDedupInteropWithSingleOps proves a batch op and a single-op
// request carrying the same req_id hit the same cache, in both directions,
// with byte-identical lease bodies.
func TestBatchDedupInteropWithSingleOps(t *testing.T) {
	r := newRig(t, testOptions())
	lr := r.acquire("alice", "wakelock")

	// Single-op renew with an ID, then the same ID inside a batch.
	req, err := newJSONRequest("POST", r.ts.URL+fmt.Sprintf("/v1/leases/%d/renew", lr.LeaseID), usageReport{CPUMS: 5})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "interop-1")
	resp, err := r.cli.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var direct leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&direct); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out := r.batch([]map[string]any{
		{"op": "renew", "lease_id": lr.LeaseID, "req_id": "interop-1", "report": map[string]any{"cpu_ms": 999}},
	})
	if !out.Results[0].Deduped {
		t.Fatal("batched retry of a single-op req_id was not deduped")
	}
	if !reflect.DeepEqual(*out.Results[0].Lease, direct) {
		t.Errorf("deduped batch lease %+v != original single-op response %+v", out.Results[0].Lease, direct)
	}

	// Batch op with an ID, then a single-op retry with the same ID.
	out = r.batch([]map[string]any{
		{"op": "renew", "lease_id": lr.LeaseID, "req_id": "interop-2", "report": map[string]any{"cpu_ms": 7}},
	})
	first := out.Results[0]
	if first.Deduped {
		t.Fatal("fresh batch op reported deduped")
	}
	req, err = newJSONRequest("POST", r.ts.URL+fmt.Sprintf("/v1/leases/%d/renew", lr.LeaseID), usageReport{CPUMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "interop-2")
	resp, err = r.cli.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Deduped") != "1" {
		t.Fatal("single-op retry of a batched req_id was not deduped")
	}
	var replay leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&replay); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !reflect.DeepEqual(replay, *first.Lease) {
		t.Errorf("deduped single-op lease %+v != original batch response %+v", replay, first.Lease)
	}

	// A repeated batch with both IDs replays both from cache.
	out = r.batch([]map[string]any{
		{"op": "renew", "lease_id": lr.LeaseID, "req_id": "interop-1"},
		{"op": "renew", "lease_id": lr.LeaseID, "req_id": "interop-2"},
	})
	for i, res := range out.Results {
		if !res.Deduped || res.Status != 200 {
			t.Errorf("replayed batch result %d: deduped=%v status=%d", i, res.Deduped, res.Status)
		}
	}
}

// TestBatchCrashEquality is the batch twin of the single-op crash tests:
// state rebuilt from snapshot+journal after batch traffic must equal the
// live state captured at the crash instant, dedup cache included.
func TestBatchCrashEquality(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Shards = 4
	d := newDurableRig(t, dir, opts)

	alice := d.acquire("alice", "wakelock")
	out := d.rig.batch([]map[string]any{
		{"op": "acquire", "client": "bob", "kind": "gps", "req_id": "b-acq-1"},
		{"op": "renew", "lease_id": alice.LeaseID, "report": map[string]any{"cpu_ms": 3, "ui_updates": 2}},
		{"op": "acquire", "client": "carol", "kind": "sensor"},
		{"op": "nonsense"},
		{"op": "release", "lease_id": alice.LeaseID, "req_id": "b-rel-1"},
	})
	if out.Results[0].Status != 200 || out.Results[4].Status != 200 {
		t.Fatalf("batch setup failed: %+v", out.Results)
	}
	bob := out.Results[0].Lease.LeaseID
	d.rig.batch([]map[string]any{
		{"op": "renew", "lease_id": bob, "report": map[string]any{"request_ms": 8, "failed_request_ms": 7}},
		{"op": "renew", "lease_id": bob, "req_id": "b-ren-9"},
	})

	pre := markAndCapture(d.s)
	d.crash()

	s2, _, post := recoverCaptured(t, dir, opts)
	defer s2.Close()
	for i := range pre {
		if !reflect.DeepEqual(pre[i], post[i]) {
			t.Errorf("shard %d state diverged after batch replay:\n live:     %+v\n replayed: %+v", i, pre[i], post[i])
		}
	}
}

// TestBatchCrashAllOrNothingPerGroup crashes mid-batch-frame: a torn tail
// must drop the whole shard group, never a prefix of it, and the daemon
// must come back consistent with the truncated journal.
func TestBatchCrashAllOrNothingPerGroup(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Shards = 1
	d := newDurableRig(t, dir, opts)

	d.acquire("alice", "wakelock") // plain frame before the batch
	out := d.rig.batch([]map[string]any{
		{"op": "acquire", "client": "bob", "kind": "gps"},
		{"op": "acquire", "client": "carol", "kind": "sensor"},
		{"op": "acquire", "client": "dave", "kind": "wakelock"},
	})
	for i, res := range out.Results {
		if res.Status != 200 {
			t.Fatalf("batch op %d: status %d", i, res.Status)
		}
	}
	d.crash()

	// Saw a few bytes off the journal tail: the cut lands inside the batch
	// frame, manufacturing the partially-written frame a crash leaves.
	jpath := filepath.Join(dir, shardDir(0), "journal.log")
	fi, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jpath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	d2 := newDurableRig(t, dir, opts)
	snap := d2.s.snapshot()
	// All-or-nothing: alice (plain frame) survived; the whole batch group
	// (bob, carol, dave) vanished together.
	if snap.Clients != 1 {
		t.Fatalf("clients = %d after torn batch frame, want 1 (the whole group dropped)", snap.Clients)
	}
	if snap.Recovery == nil || snap.Recovery.TruncatedBytes == 0 {
		t.Errorf("recovery did not report the torn tail: %+v", snap.Recovery)
	}
	// The daemon keeps serving: re-running the batch applies cleanly.
	out = d2.rig.batch([]map[string]any{
		{"op": "acquire", "client": "bob", "kind": "gps"},
		{"op": "acquire", "client": "carol", "kind": "sensor"},
		{"op": "acquire", "client": "dave", "kind": "wakelock"},
	})
	for i, res := range out.Results {
		if res.Status != 200 {
			t.Fatalf("post-recovery batch op %d: status %d", i, res.Status)
		}
	}
}

// TestBatchGroupSharesOneFrozenInstant: every op in a shard group applies at
// the same virtual time — the journal's batch members all carry the same
// "at" stamp.
func TestBatchGroupSharesOneFrozenInstant(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.Shards = 1
	d := newDurableRig(t, dir, opts)
	alice := d.acquire("alice", "wakelock")
	d.rig.batch([]map[string]any{
		{"op": "renew", "lease_id": alice.LeaseID},
		{"op": "acquire", "client": "bob", "kind": "gps"},
		{"op": "renew", "lease_id": alice.LeaseID},
	})

	sh := d.s.shards[0]
	var recs [][]byte
	sh.do(func() {
		// Re-scan the journal through the durable layer by reading the file
		// directly: batch members flatten in append order.
		jpath := filepath.Join(dir, shardDir(0), "journal.log")
		b, err := os.ReadFile(jpath)
		if err != nil {
			t.Error(err)
			return
		}
		off := 16 // header: magic + epoch
		for off+8 <= len(b) {
			lenWord := binary.LittleEndian.Uint32(b[off : off+4])
			isBatch := lenWord&(1<<31) != 0
			length := int(lenWord &^ (1 << 31))
			payload := b[off+8 : off+8+length]
			if isBatch {
				count := binary.LittleEndian.Uint32(payload[:4])
				rest := payload[4:]
				for i := uint32(0); i < count; i++ {
					n := binary.LittleEndian.Uint32(rest[:4])
					recs = append(recs, rest[4:4+n])
					rest = rest[4+n:]
				}
			} else {
				recs = append(recs, payload)
			}
			off += 8 + length
		}
	})
	if len(recs) < 4 {
		t.Fatalf("journal holds %d records, want ≥ 4 (acquire + 3 batch members)", len(recs))
	}
	group := recs[len(recs)-3:]
	var at []int64
	for _, rec := range group {
		var r struct {
			At int64 `json:"at"`
		}
		if err := json.Unmarshal(rec, &r); err != nil {
			t.Fatalf("journal record %q: %v", rec, err)
		}
		at = append(at, r.At)
	}
	if at[0] != at[1] || at[1] != at[2] {
		t.Errorf("batch group timestamps differ: %v (must share one frozen instant)", at)
	}
}
