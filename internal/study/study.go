// Package study reproduces the paper's §2.5 characterisation study: 109
// real-world energy-misbehaviour cases in 81 popular apps, collected from
// open-source hosting services and user forums, each labelled with a
// misbehaviour type (FAB/LHB/LUB/EUB or unknown) and a root cause (bug,
// configuration/policy trade-off, enhancement, or unresolved).
//
// The paper publishes only the aggregate matrix (Table 2), not the raw case
// list, so this package reconstructs a case list that is exactly consistent
// with the published marginals: the per-cell counts, the 81-app population,
// and the two findings derived from the table. Known cases from the paper's
// reference list (K-9, Kontalk, BetterWeather, …) appear under their real
// names; the remainder carry synthetic names.
package study

import (
	"fmt"

	"repro/internal/lease"
)

// RootCause labels why a case wastes energy (paper §2.5).
type RootCause int

const (
	// Bug: a software defect; usually high severity and priority.
	Bug RootCause = iota
	// Config: an intentional trade-off of energy for another property.
	Config
	// Enhancement: an optimisation developers could add.
	Enhancement
	// UnknownCause: the app is closed-source or the issue is unresolved.
	UnknownCause
)

func (c RootCause) String() string {
	switch c {
	case Bug:
		return "bug"
	case Config:
		return "configuration"
	case Enhancement:
		return "enhancement"
	default:
		return "n/a"
	}
}

// BehaviorNA marks cases whose misbehaviour type could not be determined;
// it extends the lease.Behavior classes for study bookkeeping only.
const BehaviorNA lease.Behavior = -1

// Case is one studied energy-misbehaviour report.
type Case struct {
	ID       int
	App      string
	Source   string // github, googlecode, xda, androidforums
	Behavior lease.Behavior
	Cause    RootCause
}

// matrix is Table 2's cell counts: rows FAB, LHB, LUB, EUB, N/A; columns
// Bug, Config, Enhancement, N/A.
var matrix = []struct {
	behavior lease.Behavior
	counts   [4]int
}{
	{lease.FAB, [4]int{10, 1, 1, 0}},
	{lease.LHB, [4]int{18, 5, 0, 0}},
	{lease.LUB, [4]int{23, 4, 1, 0}},
	{lease.EUB, [4]int{8, 18, 5, 3}},
	{BehaviorNA, [4]int{0, 0, 0, 12}},
}

// knownApps are apps named in the paper (references 1–21) that appear in
// the study population.
var knownApps = []string{
	"K-9 Mail", "Kontalk", "BetterWeather", "Facebook", "Torch",
	"ConnectBot", "Standup Timer", "ServalMesh", "TextSecure", "WHERE",
	"MozStumbler", "OSMTracker", "GPSLogger", "BostonBusMap", "AIMSICD",
	"OpenScienceMap", "OpenGPSTracker", "TapAndTurn", "Riot", "GTalkSMS",
}

var sources = []string{"github", "googlecode", "xda-developers", "androidforums"}

// Cases returns the reconstructed 109-case list. The list is deterministic.
func Cases() []Case {
	const totalApps = 81
	appNames := make([]string, 0, totalApps)
	appNames = append(appNames, knownApps...)
	for i := len(knownApps); i < totalApps; i++ {
		appNames = append(appNames, fmt.Sprintf("app-%02d", i+1))
	}

	var cases []Case
	id := 0
	app := 0
	for _, row := range matrix {
		for causeIdx, n := range row.counts {
			for i := 0; i < n; i++ {
				cases = append(cases, Case{
					ID:       id + 1,
					App:      appNames[app%totalApps],
					Source:   sources[id%len(sources)],
					Behavior: row.behavior,
					Cause:    RootCause(causeIdx),
				})
				id++
				app++
			}
		}
	}
	return cases
}

// Row is one Table 2 output row.
type Row struct {
	Behavior lease.Behavior
	Bug      int
	Config   int
	Enhance  int
	NA       int
	Total    int
	Percent  float64
}

// Table2 aggregates the cases into the paper's Table 2.
func Table2() []Row {
	cases := Cases()
	byBehavior := map[lease.Behavior]*Row{}
	order := []lease.Behavior{lease.FAB, lease.LHB, lease.LUB, lease.EUB, BehaviorNA}
	for _, b := range order {
		byBehavior[b] = &Row{Behavior: b}
	}
	for _, c := range cases {
		r := byBehavior[c.Behavior]
		switch c.Cause {
		case Bug:
			r.Bug++
		case Config:
			r.Config++
		case Enhancement:
			r.Enhance++
		default:
			r.NA++
		}
		r.Total++
	}
	rows := make([]Row, 0, len(order))
	for _, b := range order {
		r := byBehavior[b]
		r.Percent = 100 * float64(r.Total) / float64(len(cases))
		rows = append(rows, *r)
	}
	return rows
}

// Findings summarises the paper's two findings from the study.
type Findings struct {
	// DefectShare is the share of all cases that are FAB, LHB or LUB
	// (Finding 1: 58%).
	DefectShare float64
	// EUBShare is the EUB share of all cases (Finding 1: 31%).
	EUBShare float64
	// DefectBugShare is the share of FAB/LHB/LUB cases caused by clear
	// programming mistakes (Finding 2: ~80%).
	DefectBugShare float64
	// EUBNonBugShare is the share of EUB cases caused by design trade-offs
	// rather than bugs (Finding 2: ~77%).
	EUBNonBugShare float64
}

// ComputeFindings derives the findings from the case list.
func ComputeFindings() Findings {
	cases := Cases()
	var defect, defectBug, eub, eubNonBug int
	for _, c := range cases {
		switch c.Behavior {
		case lease.FAB, lease.LHB, lease.LUB:
			defect++
			if c.Cause == Bug {
				defectBug++
			}
		case lease.EUB:
			eub++
			if c.Cause != Bug {
				eubNonBug++
			}
		}
	}
	n := float64(len(cases))
	return Findings{
		DefectShare:    100 * float64(defect) / n,
		EUBShare:       100 * float64(eub) / n,
		DefectBugShare: 100 * float64(defectBug) / float64(defect),
		EUBNonBugShare: 100 * float64(eubNonBug) / float64(eub),
	}
}
