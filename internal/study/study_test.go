package study

import (
	"math"
	"testing"

	"repro/internal/lease"
)

func TestCaseCount(t *testing.T) {
	if got := len(Cases()); got != 109 {
		t.Fatalf("cases = %d, want 109", got)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	want := map[lease.Behavior][5]int{ // bug, config, enhance, na, total
		lease.FAB:  {10, 1, 1, 0, 12},
		lease.LHB:  {18, 5, 0, 0, 23},
		lease.LUB:  {23, 4, 1, 0, 28},
		lease.EUB:  {8, 18, 5, 3, 34},
		BehaviorNA: {0, 0, 0, 12, 12},
	}
	for _, row := range Table2() {
		w := want[row.Behavior]
		if row.Bug != w[0] || row.Config != w[1] || row.Enhance != w[2] || row.NA != w[3] || row.Total != w[4] {
			t.Errorf("row %v = %+v, want %v", row.Behavior, row, w)
		}
	}
}

func TestTable2Percentages(t *testing.T) {
	for _, row := range Table2() {
		var wantPct float64
		switch row.Behavior {
		case lease.FAB:
			wantPct = 11
		case lease.LHB:
			wantPct = 21
		case lease.LUB:
			wantPct = 26
		case lease.EUB:
			wantPct = 31
		default:
			wantPct = 11
		}
		if math.Abs(row.Percent-wantPct) > 0.6 {
			t.Errorf("%v percent = %.1f, want ≈ %v", row.Behavior, row.Percent, wantPct)
		}
	}
}

func TestFindingsMatchPaper(t *testing.T) {
	f := ComputeFindings()
	// Finding 1: FAB+LHB+LUB ≈ 58%, EUB ≈ 31%.
	if math.Abs(f.DefectShare-58) > 1 {
		t.Errorf("DefectShare = %.1f, want ≈ 58", f.DefectShare)
	}
	if math.Abs(f.EUBShare-31) > 1 {
		t.Errorf("EUBShare = %.1f, want ≈ 31", f.EUBShare)
	}
	// Finding 2: ~80% of the defect classes are bugs; ~77% of EUB is not.
	if math.Abs(f.DefectBugShare-80) > 2 {
		t.Errorf("DefectBugShare = %.1f, want ≈ 80", f.DefectBugShare)
	}
	if math.Abs(f.EUBNonBugShare-77) > 2 {
		t.Errorf("EUBNonBugShare = %.1f, want ≈ 77", f.EUBNonBugShare)
	}
}

func TestCasesDeterministicAndWellFormed(t *testing.T) {
	a, b := Cases(), Cases()
	apps := map[string]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Cases() is not deterministic")
		}
		if a[i].App == "" || a[i].Source == "" {
			t.Fatalf("case %d malformed: %+v", i, a[i])
		}
		apps[a[i].App] = true
	}
	if len(apps) != 81 {
		t.Fatalf("distinct apps = %d, want 81", len(apps))
	}
}

func TestRootCauseStrings(t *testing.T) {
	for c, want := range map[RootCause]string{Bug: "bug", Config: "configuration", Enhancement: "enhancement", UnknownCause: "n/a"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}
