#!/usr/bin/env bash
# chaos_leased.sh — crash-recovery and fault-injection test of the durable
# lease daemon, run against a sharded deployment (SHARDS independent
# Wall+Manager+journal partitions). Three phases, each a property the
# crash-safety work exists to provide:
#
#   1. Crash recovery: boot leased -shards N with a data dir, drive
#      misbehaving load until defaulters are deferred, snapshot /metrics,
#      SIGKILL the daemon mid-flight, damage ONE shard's journal tail (a
#      torn write), restart, and require (chaosverify) that every defaulter,
#      every deferral count, and every DEFERRED lease survived — per shard,
#      on the same shard, with journal records actually replayed and the
#      damaged shard's torn tail truncated rather than poisoning recovery.
#
#   2. Fault injection + self-healing: restart the fleet against a daemon
#      that drops ≥5% of responses post-apply (server http.drop + client
#      client.drop), with idempotent retries enabled, and require measurable
#      loss, measurable dedup hits, and ZERO double-applied acquires
#      (leaseload -require-no-doubles).
#
#   3. Graceful shutdown: SIGTERM the recovered daemon, restart once more,
#      and require the final checkpoint made replay unnecessary on every
#      shard (chaosverify -require-zero-replay).
#
# Artifacts (metrics snapshots, load reports, journal files, daemon logs)
# are collected in ARTIFACTS (default chaos_artifacts/) for CI upload.
#
# Usage: scripts/chaos_leased.sh
#   ADDR       listen address      (default 127.0.0.1:7072)
#   SHARDS     daemon shard count  (default 4)
#   DURATION   phase-1 load length (default 6s)
#   ARTIFACTS  artifact directory  (default chaos_artifacts)
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:7072}"
SHARDS="${SHARDS:-4}"
DURATION="${DURATION:-6s}"
ARTIFACTS="${ARTIFACTS:-chaos_artifacts}"

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
data="$bin/data"
mkdir -p "$ARTIFACTS"
daemon=""
cleanup() {
    if [ -n "$daemon" ] && kill -0 "$daemon" 2>/dev/null; then
        kill -9 "$daemon" 2>/dev/null || true
        wait "$daemon" 2>/dev/null || true
    fi
    rm -rf "$bin"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

go build -o "$bin/leased" ./cmd/leased
go build -o "$bin/leaseload" ./cmd/leaseload
go build -o "$bin/chaosverify" ./cmd/chaosverify

# json_int FILE KEY: first integer value of "key": N in FILE. The merged
# top-level metrics precede the per_shard breakdowns in the snapshot JSON,
# so "first" always reads the fleet-wide figure.
json_int() {
    grep -o "\"$2\": *[0-9]*" "$1" | head -1 | grep -o '[0-9]*$'
}

start_daemon() { # args: logfile, extra flags...
    local logf="$1"; shift
    "$bin/leased" -addr "$ADDR" -data "$data" -shards "$SHARDS" \
        -term 150ms -tau 5s -tau-max 20s -snapshot-every 64 "$@" \
        2> "$logf" &
    daemon=$!
    for i in $(seq 1 50); do
        if curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    cat "$logf" >&2
    fail "daemon never became healthy"
}

### Phase 1: SIGKILL mid-load, damage one shard's journal, recover.
echo "== phase 1: crash recovery ($SHARDS shards) =="
start_daemon "$ARTIFACTS/leased_1.log"

"$bin/leaseload" -addr "http://$ADDR" -duration "$DURATION" -beat 5ms \
    -mix normal=2,lhb=2,lub=1,fab=1 -require-defaulters \
    > "$ARTIFACTS/load_1.json"

curl -sf "http://$ADDR/metrics" > "$ARTIFACTS/metrics_precrash.json"
grep -q '"deferrals": [1-9]' "$ARTIFACTS/metrics_precrash.json" \
    || fail "no deferrals before the crash; nothing to preserve"

kill -9 "$daemon"
wait "$daemon" 2>/dev/null || true
daemon=""
for d in "$data"/shard-*; do
    s=$(basename "$d")
    cp "$d/journal.log" "$ARTIFACTS/journal_postcrash_$s.log"
    [ ! -f "$d/snapshot.bin" ] || cp "$d/snapshot.bin" "$ARTIFACTS/snapshot_postcrash_$s.bin"
done

# Damage exactly one shard's store: a torn tail on shard-00's journal, as a
# power cut mid-append would leave. Recovery must truncate it on that shard
# alone and keep everything that was intact — on every shard.
damaged="$data/shard-00/journal.log"
[ -f "$damaged" ] || fail "expected $damaged to exist"
printf 'torn-tail-garbage' >> "$damaged"

start_daemon "$ARTIFACTS/leased_2.log"
grep -q 'recovery:' "$ARTIFACTS/leased_2.log" || fail "no recovery line after restart"
grep -Eq 'recovery: shard=0 .*truncated_bytes=[1-9]' "$ARTIFACTS/leased_2.log" \
    || fail "shard 0's torn journal tail was not truncated"
if grep -E 'recovery: shard=[1-9] .*truncated_bytes=[1-9]' "$ARTIFACTS/leased_2.log"; then
    fail "an undamaged shard reported truncation"
fi
curl -sf "http://$ADDR/metrics" > "$ARTIFACTS/metrics_postcrash.json"

"$bin/chaosverify" -pre "$ARTIFACTS/metrics_precrash.json" \
    -post "$ARTIFACTS/metrics_postcrash.json" -shards "$SHARDS" -require-replayed

### Phase 2: response loss on both sides; retries must heal everything.
echo "== phase 2: fault injection + self-healing =="
kill -TERM "$daemon"; wait "$daemon" || true; daemon=""
rm -rf "$data"

start_daemon "$ARTIFACTS/leased_3.log" -faults "http.drop=0.07" -fault-seed 7
"$bin/leaseload" -addr "http://$ADDR" -duration "$DURATION" -beat 5ms \
    -mix normal=4,crash=2 -retries 6 -seed 3 \
    -faults "client.drop=0.05" -require-no-doubles \
    > "$ARTIFACTS/load_chaos.json" 2> "$ARTIFACTS/load_chaos_shards.log"

ops=$(json_int "$ARTIFACTS/load_chaos.json" ops)
lost=$(json_int "$ARTIFACTS/load_chaos.json" lost_responses)
deduped=$(json_int "$ARTIFACTS/load_chaos.json" deduped)
# ≥5% of ops must have lost their response, or the chaos was a no-op.
[ "$lost" -ge $((ops / 20)) ] \
    || fail "only $lost/$ops responses dropped; fault injection ineffective"
[ "$deduped" -gt 0 ] || fail "no retry was answered from the dedup cache"
echo "chaos: $ops ops, $lost lost, $deduped deduped, 0 doubles"

### Phase 2b: the same chaos against batched traffic. Renews ride /v1/batch
### with per-op request IDs; a dropped batch response forces a whole-batch
### resend that must be answered op-by-op from the dedup cache, with zero
### double-applied acquires. -prefix gives this phase its own client
### population: phase-2 leases live on in the daemon, and a name collision
### would carry their server-side acquire counts into this run's
### double-apply cross-check.
echo "== phase 2b: fault injection over /v1/batch =="
"$bin/leaseload" -addr "http://$ADDR" -duration "$DURATION" -beat 5ms \
    -mix normal=4,crash=2 -batch 16 -retries 6 -seed 5 -prefix b- \
    -faults "client.drop=0.05" -require-no-doubles \
    > "$ARTIFACTS/load_batch_chaos.json" 2> /dev/null

batch_reqs=$(grep -o '"batch": *[0-9]*' "$ARTIFACTS/load_batch_chaos.json" | head -1 | grep -o '[0-9]*$')
batch_lost=$(json_int "$ARTIFACTS/load_batch_chaos.json" lost_responses)
batch_deduped=$(json_int "$ARTIFACTS/load_batch_chaos.json" deduped)
[ "${batch_reqs:-0}" -gt 0 ] || fail "batch mode sent no /v1/batch requests"
[ "$batch_lost" -gt 0 ] || fail "no batch responses dropped; batch chaos ineffective"
[ "$batch_deduped" -gt 0 ] || fail "no batched retry hit the dedup cache"
echo "batch chaos: $batch_reqs batch requests, $batch_lost lost, $batch_deduped deduped, 0 doubles"

### Phase 3: graceful SIGTERM, restart must replay nothing.
echo "== phase 3: graceful shutdown =="
curl -sf "http://$ADDR/metrics" > "$ARTIFACTS/metrics_preterm.json"
kill -TERM "$daemon"
rc=0; wait "$daemon" || rc=$?; daemon=""
[ "$rc" = 0 ] || { cat "$ARTIFACTS/leased_3.log" >&2; fail "daemon exited $rc on SIGTERM"; }
grep -q 'final checkpoint written' "$ARTIFACTS/leased_3.log" \
    || fail "no final-checkpoint marker in daemon log"

start_daemon "$ARTIFACTS/leased_4.log"
curl -sf "http://$ADDR/metrics" > "$ARTIFACTS/metrics_postterm.json"
"$bin/chaosverify" -pre "$ARTIFACTS/metrics_preterm.json" \
    -post "$ARTIFACTS/metrics_postterm.json" -shards "$SHARDS" -require-zero-replay

kill -TERM "$daemon"; wait "$daemon" || true; daemon=""

echo "chaos_leased: OK ($SHARDS shards, artifacts in $ARTIFACTS/)"
