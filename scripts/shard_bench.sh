#!/usr/bin/env bash
# shard_bench.sh — sustained-throughput sweep of the lease daemon across
# shard counts. For each N in SHARD_COUNTS it boots `leased -shards N`
# (in-memory: this measures the serving path, not the disk), drives it with
# a fixed client fleet via leaseload, and records sustained ops/sec plus the
# server-side renew p99 into the benchmark JSON:
#
#   {"name": "LeasedThroughput/shards=N", "ops_per_sec": ..., "p99_ms": ...,
#    "gomaxprocs": ...}
#
# Records are appended to an existing bench.sh array (or a new array is
# created), so `scripts/bench.sh BENCH_6.json && scripts/shard_bench.sh
# BENCH_6.json` yields one combined perf record. gomaxprocs is recorded
# because the scaling claim (shards=4 ≥ 2.5× shards=1) is only meaningful
# on a ≥4-core runner; on fewer cores the numbers stay flat by design.
#
# With BATCH > 1 the fleet rides POST /v1/batch (leaseload -batch), each
# request carrying BATCH renews; the record names gain a "/batch=B" suffix
# and a "batch" field, so per-op and batched sweeps coexist in one file:
#
#   scripts/shard_bench.sh BENCH_7.json          # per-op baseline
#   BATCH=64 scripts/shard_bench.sh BENCH_7.json # batched sweep
#
# Usage: scripts/shard_bench.sh [output.json]
#   SHARD_COUNTS  shard counts to sweep        (default "1 2 4 8")
#   DURATION      load length per shard count  (default 5s)
#   CLIENTS       well-behaved clients driving (default 24)
#   BATCH         renews per /v1/batch request (default 0 = per-op routes)
#   ADDR          listen address               (default 127.0.0.1:7073)
set -euo pipefail

OUT="${1:-BENCH_7.json}"
SHARD_COUNTS="${SHARD_COUNTS:-1 2 4 8}"
DURATION="${DURATION:-5s}"
CLIENTS="${CLIENTS:-24}"
BATCH="${BATCH:-0}"
ADDR="${ADDR:-127.0.0.1:7073}"

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
daemon=""
cleanup() {
    if [ -n "$daemon" ] && kill -0 "$daemon" 2>/dev/null; then
        kill -9 "$daemon" 2>/dev/null || true
        wait "$daemon" 2>/dev/null || true
    fi
    rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/leased" ./cmd/leased
go build -o "$bin/leaseload" ./cmd/leaseload

gomaxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
records=""

for n in $SHARD_COUNTS; do
    "$bin/leased" -addr "$ADDR" -shards "$n" \
        -term 150ms -tau 5s -tau-max 20s 2> "$bin/leased_$n.log" &
    daemon=$!
    for i in $(seq 1 50); do
        if curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; then break; fi
        sleep 0.1
    done

    "$bin/leaseload" -addr "http://$ADDR" -duration "$DURATION" -beat 1ms \
        -mix "normal=$CLIENTS" -batch "$BATCH" > "$bin/load_$n.json" 2> /dev/null

    # Top-level (merged) figures precede per-shard breakdowns in both JSON
    # documents, so the first match is always the fleet-wide value. Batched
    # renews bill to the "batch" route, so read that histogram instead.
    route="renew"
    if [ "$BATCH" -gt 1 ]; then route="batch"; fi
    ops_per_sec=$(grep -o '"ops_per_sec": *[0-9.]*' "$bin/load_$n.json" | head -1 | grep -o '[0-9.]*$')
    curl -sf "http://$ADDR/metrics" > "$bin/metrics_$n.json"
    p99_ms=$(awk -F': ' -v route="\"$route\"" '$0 ~ route {f=1} f && /"p99"/{gsub(/[,}].*/, "", $2); print $2; exit}' \
        "$bin/metrics_$n.json")

    kill -TERM "$daemon"
    wait "$daemon" 2>/dev/null || true
    daemon=""

    name="LeasedThroughput/shards=$n"
    if [ "$BATCH" -gt 1 ]; then name="$name/batch=$BATCH"; fi
    echo "$name: $ops_per_sec ops/sec, renew p99 ${p99_ms}ms" >&2
    rec=$(printf '  {"name": "%s", "ops_per_sec": %s, "p99_ms": %s, "batch": %s, "gomaxprocs": %s}' \
        "$name" "${ops_per_sec:-0}" "${p99_ms:-0}" "$BATCH" "$gomaxprocs")
    if [ -n "$records" ]; then records="$records,
$rec"; else records="$rec"; fi
done

if [ -s "$OUT" ] && grep -q '"name"' "$OUT"; then
    # Splice into the existing benchmark array: drop the closing bracket,
    # add a comma, append our records.
    tmp="$(mktemp)"
    head -n -1 "$OUT" > "$tmp"
    printf ',\n%s\n]\n' "$records" >> "$tmp"
    mv "$tmp" "$OUT"
else
    printf '[\n%s\n]\n' "$records" > "$OUT"
fi

echo "appended $(echo "$SHARD_COUNTS" | wc -w) throughput records to $OUT (gomaxprocs=$gomaxprocs)"
