#!/usr/bin/env bash
# smoke_leased.sh — end-to-end smoke test of the networked lease daemon.
#
# Builds leased and leaseload, boots the daemon with terms short enough for
# misbehaviour to be caught within seconds, fires a mixed-profile load burst
# at it, and then asserts the things the subsystem exists for:
#
#   * the burst sustains at least MIN_OPS operations (default 10000);
#   * every misbehaving client (lhb/lub/fab) is deferred, no honest one is
#     (leaseload -require-defaulters);
#   * /metrics reports a non-zero deferral count and latency percentiles;
#   * SIGTERM produces a clean graceful shutdown ("shutdown complete",
#     exit status 0).
#
# The final /metrics snapshot is left in METRICS_OUT (default
# leased_metrics.json) for CI to upload as an artifact.
#
# Usage: scripts/smoke_leased.sh
#   ADDR         listen address          (default 127.0.0.1:7071)
#   DURATION     load-burst length       (default 10s)
#   MIN_OPS      required operations     (default 10000)
#   METRICS_OUT  metrics snapshot path   (default leased_metrics.json)
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:7071}"
DURATION="${DURATION:-10s}"
MIN_OPS="${MIN_OPS:-10000}"
METRICS_OUT="${METRICS_OUT:-leased_metrics.json}"

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
log="$bin/leased.log"
daemon=""
cleanup() {
    # Reap the daemon even when an assertion fails mid-script, so a rerun
    # never finds the port still held.
    if [ -n "$daemon" ] && kill -0 "$daemon" 2>/dev/null; then
        kill -TERM "$daemon" 2>/dev/null || true
        wait "$daemon" 2>/dev/null || true
    fi
    rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/leased" ./cmd/leased
go build -o "$bin/leaseload" ./cmd/leaseload

"$bin/leased" -addr "$ADDR" -term 150ms -tau 300ms -tau-max 1200ms \
    2> "$log" &
daemon=$!
# If the daemon dies early, fail loudly rather than hanging on the load run.
kill -0 "$daemon"

for i in $(seq 1 50); do
    if curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then
        echo "FAIL: daemon never became healthy" >&2
        cat "$log" >&2
        exit 1
    fi
    sleep 0.1
done

"$bin/leaseload" -addr "http://$ADDR" -duration "$DURATION" -beat 5ms \
    -mix normal=4,lhb=2,lub=2,fab=2 \
    -require-defaulters -min-ops "$MIN_OPS"

curl -sf "http://$ADDR/metrics" > "$METRICS_OUT"

# The daemon itself must have recorded deferrals and latency percentiles.
grep -q '"deferrals": [1-9]' "$METRICS_OUT" || {
    echo "FAIL: /metrics reports no deferrals" >&2
    cat "$METRICS_OUT" >&2
    exit 1
}
grep -q '"p99"' "$METRICS_OUT" || {
    echo "FAIL: /metrics reports no latency percentiles" >&2
    cat "$METRICS_OUT" >&2
    exit 1
}

kill -TERM "$daemon"
rc=0
wait "$daemon" || rc=$?
if [ "$rc" != 0 ]; then
    echo "FAIL: daemon exited $rc on SIGTERM" >&2
    cat "$log" >&2
    exit 1
fi
grep -q 'shutdown complete' "$log" || {
    echo "FAIL: no clean-shutdown marker in daemon log" >&2
    cat "$log" >&2
    exit 1
}

echo "smoke_leased: OK ($(grep -o '"deferrals": [0-9]*' "$METRICS_OUT" | head -1), metrics in $METRICS_OUT)"
