#!/usr/bin/env bash
# chaos_partition.sh — network-partition failover test of the replicated
# lease daemon with NO operator in the loop: a 3-node cluster (every
# inter-node link routed through netchaos proxies) detects a blackholed
# leader, self-promotes the deterministic successor, and fences the old
# leader on heal — while a chaosverify monitor proves that at no sampled
# instant were two nodes writable and no node's epoch ever moved backwards.
#
#   1. Boot A (primary), B, C with -auto-failover; every node reaches its
#      peers only through its own netchaos proxies. Drive misbehaving load
#      at A (leaseload -require-no-doubles) until defaulters are deferred;
#      wait for both followers to sync; snapshot A (pre1).
#
#   2. Leader isolation: blackhole every A link (both directions) with a
#      background load spanning the cut. A's leadership lease expires —
#      writes at A answer 421 — before B self-promotes (highest applied
#      offset, lowest node ID: B). C re-aims at B via the election poll's
#      leader hint. Heal: the first epoch exchange fences A; its 421s now
#      carry a Leader hint to B. Drive load AT THE FENCED A — clients must
#      redirect to B, still with zero double-applies. chaosverify pre1 → B
#      requires the defaulter set preserved and the epoch bumped. No
#      `leased -promote` appears anywhere in this script.
#
#   3. Asymmetric link: restart A as a follower of B (an operator may
#      restart a fenced box; nobody promotes anything). Then drop only B→C
#      payloads (drop=s2c on C's view of B): C must suspect B, but with A
#      still acking, B keeps its lease and no election happens.
#
#   4. Symmetric split {B} | {A, C}: the majority side elects A (lowest ID
#      among equally-applied suspects) at epoch 2; B's lease expires before
#      that; on heal B is fenced. chaosverify B-pre → A-post requires the
#      epoch bump and every verdict preserved across BOTH unattended
#      failovers.
#
# The monitor runs across all four phases; its SIGTERM exit status is the
# at-most-one-writable-leader / monotone-epoch gate.
#
# Usage: scripts/chaos_partition.sh
#   SHARDS     shards per node       (default 2)
#   DURATION   load length per phase (default 6s)
#   ARTIFACTS  artifact directory    (default chaos_partition_artifacts)
set -euo pipefail

SHARDS="${SHARDS:-2}"
DURATION="${DURATION:-6s}"
ARTIFACTS="${ARTIFACTS:-chaos_partition_artifacts}"

# Real node addresses (clients and the monitor talk to these directly).
PA=127.0.0.1:7181; RA=127.0.0.1:7191
PB=127.0.0.1:7182; RB=127.0.0.1:7192
PC=127.0.0.1:7183; RC=127.0.0.1:7193
CTL=127.0.0.1:7199

# Per-viewer proxies: X reaches Y only through X's own x_y_{http,repl}
# links, so "partition A" means impairing A's links and everyone's links
# to A without touching B↔C.
AB_H=127.0.0.1:8111; AB_R=127.0.0.1:8112
AC_H=127.0.0.1:8113; AC_R=127.0.0.1:8114
BA_H=127.0.0.1:8121; BA_R=127.0.0.1:8122
BC_H=127.0.0.1:8123; BC_R=127.0.0.1:8124
CA_H=127.0.0.1:8131; CA_R=127.0.0.1:8132
CB_H=127.0.0.1:8133; CB_R=127.0.0.1:8134

# Failure-detection timings: a 100ms ping cadence, 5 missed pings to
# suspect (500ms), a 250ms leadership lease. The deposed leader is
# read-only within lease+tick ≈ 350ms of losing quorum; the successor
# waits out detect+lease = 750ms of silence before opening — handoff
# margin ≈ 400ms.
PING=100ms; MISSED=5; LEASE=250ms

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
mkdir -p "$ARTIFACTS"
pidA=""; pidB=""; pidC=""; pidNet=""; pidMon=""; pidLoad=""
cleanup() {
    for p in "$pidA" "$pidB" "$pidC" "$pidNet" "$pidMon" "$pidLoad"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$bin"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

go build -o "$bin/leased" ./cmd/leased
go build -o "$bin/leaseload" ./cmd/leaseload
go build -o "$bin/chaosverify" ./cmd/chaosverify
go build -o "$bin/netchaos" ./cmd/netchaos

json_int() {
    grep -o "\"$2\": *[0-9]*" "$1" | head -1 | grep -o '[0-9]*$'
}

# set_link NAME SPEC — reshape one proxy link ("all" hits every link).
set_link() {
    curl -sfG "http://$CTL/set" --data-urlencode "link=$1" --data-urlencode "spec=$2" > /dev/null \
        || fail "netchaos set $1=$2"
}

# hz_field ADDR KEY — one field out of /healthz ("x" when unreachable).
hz_field() {
    curl -sf --max-time 2 "http://$1/healthz" 2>/dev/null \
        | grep -o "\"$2\":[^,}]*" | head -1 | cut -d: -f2 || echo x
}

wait_hz() { # addr key want tries what
    local got=""
    for i in $(seq 1 "$4"); do
        got=$(hz_field "$1" "$2")
        if [ "$got" = "$3" ]; then return 0; fi
        sleep 0.1
    done
    fail "$5 (last $2=$got)"
}

wait_synced() { # addr
    local hz="" c="" l=""
    for i in $(seq 1 200); do
        hz=$(curl -sf "http://$1/healthz" || true)
        c=$(echo "$hz" | grep -o '"connected": *[0-9]*' | grep -o '[0-9]*$' || true)
        l=$(echo "$hz" | grep -o '"lag_records": *[0-9]*' | grep -o '[0-9]*$' || true)
        if [ "${c:-x}" = "$SHARDS" ] && [ "${l:-x}" = "0" ]; then return 0; fi
        sleep 0.1
    done
    fail "follower at $1 never synced (last healthz: $hz)"
}

start_node() { # pidvar logfile addr data extra-flags...
    local pidvar="$1" logf="$2" addr="$3" data="$4"; shift 4
    "$bin/leased" -addr "$addr" -data "$data" -shards "$SHARDS" \
        -term 150ms -tau 60s -tau-max 240s -snapshot-every 64 \
        -auto-failover -ping-every "$PING" -missed-pings "$MISSED" -lease-term "$LEASE" \
        "$@" 2> "$logf" &
    eval "$pidvar=\$!"
    disown %% 2>/dev/null || true
    for i in $(seq 1 50); do
        if curl -sf "http://$addr/healthz" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    cat "$logf" >&2
    fail "node at $addr never became healthy"
}

# Every node lists all three peers; its entries for the OTHER nodes point at
# its own proxies.
PEERS_A="a,http://$PA,$RA;b,http://$AB_H,$AB_R;c,http://$AC_H,$AC_R"
PEERS_B="a,http://$BA_H,$BA_R;b,http://$PB,$RB;c,http://$BC_H,$BC_R"
PEERS_C="a,http://$CA_H,$CA_R;b,http://$CB_H,$CB_R;c,http://$PC,$RC"

### Phase 0: the network, then the cluster through it.
echo "== phase 0: netchaos fabric + 3-node auto-failover cluster =="
"$bin/netchaos" -ctl "$CTL" \
    -link "a_b_http=$AB_H>$PB" -link "a_b_repl=$AB_R>$RB" \
    -link "a_c_http=$AC_H>$PC" -link "a_c_repl=$AC_R>$RC" \
    -link "b_a_http=$BA_H>$PA" -link "b_a_repl=$BA_R>$RA" \
    -link "b_c_http=$BC_H>$PC" -link "b_c_repl=$BC_R>$RC" \
    -link "c_a_http=$CA_H>$PA" -link "c_a_repl=$CA_R>$RA" \
    -link "c_b_http=$CB_H>$PB" -link "c_b_repl=$CB_R>$RB" \
    2> "$ARTIFACTS/netchaos.log" &
pidNet=$!
for i in $(seq 1 50); do
    if curl -sf "http://$CTL/links" > /dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "http://$CTL/links" > /dev/null || fail "netchaos control plane never came up"

start_node pidA "$ARTIFACTS/leased_a1.log" "$PA" "$bin/dataA" \
    -role primary -repl-addr "$RA" -advertise "http://$PA" -node-id a -peers "$PEERS_A"
start_node pidB "$ARTIFACTS/leased_b.log" "$PB" "$bin/dataB" \
    -role follower -repl-addr "$RB" -primary "$BA_R" -advertise "http://$PB" -node-id b -peers "$PEERS_B"
start_node pidC "$ARTIFACTS/leased_c.log" "$PC" "$bin/dataC" \
    -role follower -repl-addr "$RC" -primary "$CA_R" -advertise "http://$PC" -node-id c -peers "$PEERS_C"

"$bin/chaosverify" -monitor "http://$PA,http://$PB,http://$PC" \
    -monitor-interval 100ms -monitor-out "$ARTIFACTS/monitor.jsonl" \
    2> "$ARTIFACTS/monitor.log" &
pidMon=$!

### Phase 1: misbehaving load at the leader; everyone synced.
echo "== phase 1: load at A, B and C following through the fabric =="
"$bin/leaseload" -addr "http://$PA" -duration "$DURATION" -beat 5ms \
    -mix normal=2,lhb=2,lub=1,fab=1 -retries 6 -seed 11 \
    -faults "client.drop=0.05" -require-no-doubles \
    > "$ARTIFACTS/load_1.json"
det=$(json_int "$ARTIFACTS/load_1.json" misbehaving_deferred)
[ "${det:-0}" -gt 0 ] || fail "no misbehaving client deferred in phase 1"

wait_synced "$PB"
wait_synced "$PC"
curl -sf "http://$PA/metrics" > "$ARTIFACTS/metrics_pre1.json"
grep -q '"deferrals": [1-9]' "$ARTIFACTS/metrics_pre1.json" \
    || fail "no deferrals before the partition; nothing to preserve"

### Phase 2: blackhole the leader; the cluster must fail over by itself.
echo "== phase 2: leader isolation (blackhole all A links) =="
# The cut comes first: B and C are fully synced with identical applied
# offsets, so the election tiebreak (lowest node ID among equally-applied
# candidates) deterministically picks B. A write reaching one follower
# after the other's link died would — correctly — crown the more
# caught-up node instead.
set_link a_b_http blackhole=1; set_link a_b_repl blackhole=1
set_link a_c_http blackhole=1; set_link a_c_repl blackhole=1
set_link b_a_http blackhole=1; set_link b_a_repl blackhole=1
set_link c_a_http blackhole=1; set_link c_a_repl blackhole=1

# Background load spanning the failover: these clients ride through the
# lease expiry and B's promotion; the report is an artifact, not a gate —
# during the window A answers 421 and that unavailability is the design.
"$bin/leaseload" -addr "http://$PA" -duration 8s -beat 10ms \
    -mix normal=4 -retries 8 -seed 17 -prefix cut- \
    > "$ARTIFACTS/load_cut.json" 2>/dev/null &
pidLoad=$!

# The isolated leader's lease expires: writes suspend BEFORE any successor
# can exist (lease < detect is enforced at startup).
wait_hz "$PA" writable false 100 "isolated leader never went read-only"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$PA/v1/leases" \
    -H 'Content-Type: application/json' -d '{"client":"minority-probe","kind":"wakelock"}')
[ "$code" = "421" ] || fail "isolated read-only leader answered $code to a write, want 421"
echo "phase 2: A read-only"

# B self-promotes (equal applied offsets; lowest ID wins) — unattended.
wait_hz "$PB" role '"primary"' 300 "B never self-promoted"
wait_hz "$PB" cluster_epoch 1 50 "B promoted without bumping the epoch"
wait_hz "$PB" writable true 100 "promoted B never opened for writes"
# The loser re-aims at the winner, no operator involved.
wait_hz "$PC" role '"follower"' 50 "C should have stayed a follower"
wait_hz "$PC" cluster_epoch 1 300 "C never adopted the new epoch"
wait_synced "$PC"
echo "phase 2: B promoted at epoch 1, C re-aimed at B"

wait "$pidLoad" 2>/dev/null || true # spanning load: artifact only
pidLoad=""

### Phase 3: heal; the ex-leader must come back fenced, not writable.
echo "== phase 3: heal the partition; A is fenced by the epoch exchange =="
set_link all ""
wait_hz "$PA" role '"fenced"' 300 "healed ex-leader was never fenced"

code=$(curl -s -o "$ARTIFACTS/fence_body.json" -D "$ARTIFACTS/fence_headers.txt" \
    -w '%{http_code}' -X POST "http://$PA/v1/leases" \
    -H 'Content-Type: application/json' \
    -d '{"client":"fence-probe","kind":"wakelock"}')
[ "$code" = "421" ] || fail "fenced ex-leader answered $code to a write, want 421"
grep -qi "^Leader: *http://$PB" "$ARTIFACTS/fence_headers.txt" \
    || fail "421 from the fenced node carried no Leader hint to B"

# Load at the FENCED node: clients must follow the hint to B, zero doubles.
"$bin/leaseload" -addr "http://$PA" -duration "$DURATION" -beat 5ms \
    -mix normal=2,lhb=2,lub=1,fab=1 -retries 6 -seed 13 -prefix p2- \
    -faults "client.drop=0.05" -require-no-doubles \
    > "$ARTIFACTS/load_2.json"
redirects=$(json_int "$ARTIFACTS/load_2.json" redirects)
[ "${redirects:-0}" -gt 0 ] || fail "no client followed the Leader hint (redirects=0)"
echo "phase 3: $redirects clients redirected to the self-promoted leader, 0 doubles"

wait_synced "$PC"
curl -sf "http://$PB/metrics" > "$ARTIFACTS/metrics_b.json"
"$bin/chaosverify" -pre "$ARTIFACTS/metrics_pre1.json" \
    -post "$ARTIFACTS/metrics_b.json" -shards "$SHARDS" \
    -require-role primary -require-epoch-bump

### Phase 4: asymmetric link — suspicion without an election.
echo "== phase 4: one-way drop B→C; C suspects, nobody promotes =="
# Restarting a fenced box as a follower is an operator action; promoting is
# not — and none happens below.
kill -9 "$pidA"
wait "$pidA" 2>/dev/null || true
start_node pidA "$ARTIFACTS/leased_a2.log" "$PA" "$bin/dataA" \
    -role follower -repl-addr "$RA" -primary "$AB_R" -advertise "http://$PA" -node-id a -peers "$PEERS_A"
wait_synced "$PA"

set_link c_b_repl drop=s2c
wait_hz "$PC" suspect true 100 "C never suspected B over the dropped direction"
sleep 2 # ample time for a wrong election
[ "$(hz_field "$PB" role)" = '"primary"' ] || fail "B lost leadership over a one-way link"
[ "$(hz_field "$PB" writable)" = "true" ] || fail "B's lease broke over a one-way link"
[ "$(hz_field "$PC" cluster_epoch)" = "1" ] || fail "one-way link moved C's epoch"
[ "$(hz_field "$PC" role)" = '"follower"' ] || fail "C promoted itself without a quorum of suspects"
set_link c_b_repl ""
wait_hz "$PC" suspect false 100 "C's suspicion never cleared after the heal"
wait_synced "$PC"
echo "phase 4: suspicion raised and cleared, no election"

### Phase 5: symmetric split — the majority side elects, B is fenced on heal.
echo "== phase 5: split {B} | {A, C}; A self-promotes at epoch 2 =="
wait_synced "$PA"
curl -sf "http://$PB/metrics" > "$ARTIFACTS/metrics_pre2.json"

set_link b_a_http blackhole=1; set_link b_a_repl blackhole=1
set_link b_c_http blackhole=1; set_link b_c_repl blackhole=1
set_link a_b_http blackhole=1; set_link a_b_repl blackhole=1
set_link c_b_http blackhole=1; set_link c_b_repl blackhole=1

wait_hz "$PB" writable false 100 "split leader never went read-only"
wait_hz "$PA" role '"primary"' 300 "A never self-promoted on the majority side"
wait_hz "$PA" cluster_epoch 2 50 "A promoted without bumping the epoch"
wait_hz "$PC" cluster_epoch 2 300 "C never adopted epoch 2"
wait_hz "$PC" role '"follower"' 50 "C should have re-aimed, not promoted"
wait_synced "$PC"
echo "phase 5: A promoted at epoch 2, C re-aimed"

set_link all ""
wait_hz "$PB" role '"fenced"' 300 "healed B was never fenced"

sleep 1 # let A's clock overtake B's final time-driven counters
curl -sf "http://$PA/metrics" > "$ARTIFACTS/metrics_post.json"
"$bin/chaosverify" -pre "$ARTIFACTS/metrics_pre2.json" \
    -post "$ARTIFACTS/metrics_post.json" -shards "$SHARDS" \
    -require-role primary -require-epoch-bump
# Full chain: phase-1 verdicts survived two unattended failovers.
"$bin/chaosverify" -pre "$ARTIFACTS/metrics_pre1.json" \
    -post "$ARTIFACTS/metrics_post.json" -shards "$SHARDS" \
    -require-role primary -require-epoch-bump

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$PA/v1/leases" \
    -H 'Content-Type: application/json' -d '{"client":"post-split-probe","kind":"wakelock"}')
[ "$code" = "200" ] || fail "re-promoted A answered $code to a write, want 200"

### The monitor's verdict covers every instant of all five phases.
kill -TERM "$pidMon"
monrc=0
wait "$pidMon" || monrc=$?
pidMon=""
[ "$monrc" = "0" ] || fail "monitor observed an invariant violation (see $ARTIFACTS/monitor.log)"
rounds=$(wc -l < "$ARTIFACTS/monitor.jsonl")
[ "${rounds:-0}" -gt 20 ] || fail "monitor sampled only $rounds rounds; it was not watching"

echo "chaos_partition: OK (2 unattended failovers, $rounds monitor rounds, artifacts in $ARTIFACTS/)"
