#!/usr/bin/env bash
# bench_gate.sh — regression gate over the machine-readable benchmark JSON.
# Compares a freshly generated BENCH file against the committed record of
# the previous PR and fails when the serving hot path got slower.
#
# Two checks, different scopes because they have different noise floors:
#
#   - allocs/op must not increase for ANY benchmark present in both files
#     (allocation counts are deterministic; any increase is a real
#     regression), and the zero-alloc pins (ShardedApply, BatchApply,
#     ReplicatedApply — the serve path with a replication stream attached)
#     must stay at exactly 0 regardless of what the old file says.
#   - ns/op on the PINNED set must not regress by more than THRESHOLD
#     (default 10%). The default set is the daemon serving path
#     (ShardedApply, BatchApply, ReplicatedApply) — benches slow enough
#     that 10% means something; the ~100 ns kernel micros swing ±25%
#     run-to-run on a shared box, so they are alloc-gated only. Widen via
#     PINNED when running on a quiet machine.
#
# Only benchmarks present in BOTH files are compared, so adding or renaming
# benches never trips the gate.
#
# Usage: scripts/bench_gate.sh <old.json> <new.json>
#   THRESHOLD  allowed ns/op regression fraction (default 0.10)
#   PINNED     regex of benchmark names to ns/op-gate
set -euo pipefail

[ $# -eq 2 ] || { echo "usage: $0 <old.json> <new.json>" >&2; exit 2; }
OLD="$1"
NEW="$2"
THRESHOLD="${THRESHOLD:-0.10}"
PINNED="${PINNED:-^Benchmark(ShardedApply|BatchApply|ReplicatedApply)}"

[ -f "$OLD" ] || { echo "bench_gate: missing $OLD" >&2; exit 2; }
[ -f "$NEW" ] || { echo "bench_gate: missing $NEW" >&2; exit 2; }

python3 - "$OLD" "$NEW" "$THRESHOLD" "$PINNED" <<'EOF'
import json, re, sys

old_path, new_path, threshold, pinned = sys.argv[1:5]
threshold = float(threshold)
pin = re.compile(pinned)

def load(path):
    with open(path) as f:
        return {r["name"]: r for r in json.load(f) if "ns_op" in r}

old, new = load(old_path), load(new_path)
shared = sorted(n for n in new if n in old)
if not shared:
    sys.exit(f"bench_gate: no benchmarks shared between {old_path} and {new_path}")

failures = []
gated = 0
for name in shared:
    o, n = old[name], new[name]
    if n["allocs_op"] > o["allocs_op"]:
        failures.append(f"{name}: allocs/op {o['allocs_op']} -> {n['allocs_op']}")
    if pin.search(name):
        gated += 1
        if o["ns_op"] > 0 and n["ns_op"] > o["ns_op"] * (1 + threshold):
            failures.append(
                f"{name}: ns/op {o['ns_op']} -> {n['ns_op']} "
                f"(+{100 * (n['ns_op'] / o['ns_op'] - 1):.1f}% > {100 * threshold:.0f}%)")

# The zero-alloc acceptance pins hold unconditionally.
for name, rec in new.items():
    if re.search(r"^Benchmark(ShardedApply|BatchApply|ReplicatedApply)", name) and rec["allocs_op"] != 0:
        failures.append(f"{name}: allocs/op = {rec['allocs_op']}, pinned at 0")

# PR 8 acceptance pins: the world-reuse work dropped BatteryLife from ~64k
# allocs/op to a few hundred — hold the line at the PR's ceiling so closure
# or pooling regressions surface immediately. FleetDevice must exist (the
# sweep stays benchmarked) and stay within the same alloc ceiling per device.
CEILINGS = {"BenchmarkBatteryLife": 6400, "BenchmarkFleetDevice": 6400}
for name, ceiling in CEILINGS.items():
    rec = new.get(name)
    if rec is None:
        failures.append(f"{name}: missing from {new_path}, pinned benchmark")
    elif rec["allocs_op"] > ceiling:
        failures.append(f"{name}: allocs/op = {rec['allocs_op']}, pinned at <= {ceiling}")

if failures:
    print("bench_gate: FAIL", file=sys.stderr)
    for f in failures:
        print("  " + f, file=sys.stderr)
    sys.exit(1)
print(f"bench_gate: OK ({len(shared)} benchmarks alloc-checked, "
      f"{gated} ns/op-gated within {100 * threshold:.0f}%)")
EOF
