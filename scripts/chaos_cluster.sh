#!/usr/bin/env bash
# chaos_cluster.sh — kill-the-leader failover test of the replicated lease
# daemon: a 3-node cluster (one primary, two followers, SHARDS shards each,
# one replication stream per shard) survives two forced failovers under
# injected response loss without losing a verdict or double-applying a
# request.
#
#   1. Boot A (primary) with followers B and C. Drive misbehaving load at A
#      with ≥5% client-side response loss and idempotent retries until
#      defaulters are deferred (leaseload -require-defaulters
#      -require-no-doubles). Snapshot A's /metrics (pre1), wait until both
#      followers report zero replication lag.
#
#   2. Failover #1: SIGKILL A mid-service. Promote B (leased -promote, the
#      admin verb). Re-point C at B; restart the dead A as a follower of B —
#      the stale ex-primary must come back fenced: writes answer 421 with a
#      Leader header naming B, and its band-0 journal is retired under B's
#      epoch band. Drive phase-2 load AT THE FENCED NODE, so every client
#      must follow the 421 Leader hint to B (report must show redirects).
#      chaosverify pre1 → B requires the defaulter set preserved, counters
#      monotone, the cluster epoch bumped, and B serving as primary.
#
#   3. Failover #2: wait C synced, SIGKILL B, promote C (POST /v1/promote).
#      chaosverify B → C and — the full-chain check — pre1 → C: every
#      verdict the original primary ever reached survived two leadership
#      changes.
#
# Artifacts (metrics snapshots, load reports, per-node logs) land in
# ARTIFACTS (default chaos_cluster_artifacts/) for CI upload.
#
# Usage: scripts/chaos_cluster.sh
#   SHARDS     shards per node       (default 2)
#   DURATION   load length per phase (default 6s)
#   ARTIFACTS  artifact directory    (default chaos_cluster_artifacts)
set -euo pipefail

SHARDS="${SHARDS:-2}"
DURATION="${DURATION:-6s}"
ARTIFACTS="${ARTIFACTS:-chaos_cluster_artifacts}"

PA=127.0.0.1:7081; RA=127.0.0.1:7091
PB=127.0.0.1:7082; RB=127.0.0.1:7092
PC=127.0.0.1:7083; RC=127.0.0.1:7093

cd "$(dirname "$0")/.."

bin="$(mktemp -d)"
mkdir -p "$ARTIFACTS"
pidA=""; pidB=""; pidC=""
cleanup() {
    for p in "$pidA" "$pidB" "$pidC"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null || true
            wait "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$bin"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

go build -o "$bin/leased" ./cmd/leased
go build -o "$bin/leaseload" ./cmd/leaseload
go build -o "$bin/chaosverify" ./cmd/chaosverify

# json_int FILE KEY: first integer value of "key": N in FILE (merged metrics
# precede per-shard breakdowns, so "first" reads the fleet-wide figure).
json_int() {
    grep -o "\"$2\": *[0-9]*" "$1" | head -1 | grep -o '[0-9]*$'
}

# Deferral intervals are stretched far past the script's lifetime (tau 60s)
# so a lease DEFERRED in phase 1 is still DEFERRED at the final snapshot —
# the preserved-verdict check compares states across ~20s of wall time.
start_node() { # pidvar logfile addr data extra-flags...
    local pidvar="$1" logf="$2" addr="$3" data="$4"; shift 4
    "$bin/leased" -addr "$addr" -data "$data" -shards "$SHARDS" \
        -term 150ms -tau 60s -tau-max 240s -snapshot-every 64 "$@" \
        2> "$logf" &
    eval "$pidvar=\$!"
    disown %% 2>/dev/null || true # keep SIGKILLs out of the job-control log
    for i in $(seq 1 50); do
        if curl -sf "http://$addr/healthz" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    cat "$logf" >&2
    fail "node at $addr never became healthy"
}

wait_synced() { # addr
    local hz="" c="" l=""
    for i in $(seq 1 100); do
        hz=$(curl -sf "http://$1/healthz" || true)
        c=$(echo "$hz" | grep -o '"connected": *[0-9]*' | grep -o '[0-9]*$' || true)
        l=$(echo "$hz" | grep -o '"lag_records": *[0-9]*' | grep -o '[0-9]*$' || true)
        if [ "${c:-x}" = "$SHARDS" ] && [ "${l:-x}" = "0" ]; then return 0; fi
        sleep 0.1
    done
    fail "follower at $1 never synced (last healthz: $hz)"
}

### Phase 1: 3-node cluster, lossy misbehaving load at the primary.
echo "== phase 1: replicated load at A (primary), B and C following =="
start_node pidA "$ARTIFACTS/leased_a1.log" "$PA" "$bin/dataA" \
    -role primary -repl-addr "$RA" -advertise "http://$PA"
start_node pidB "$ARTIFACTS/leased_b.log" "$PB" "$bin/dataB" \
    -role follower -repl-addr "$RB" -primary "$RA" -advertise "http://$PB"
start_node pidC "$ARTIFACTS/leased_c1.log" "$PC" "$bin/dataC" \
    -role follower -repl-addr "$RC" -primary "$RA" -advertise "http://$PC"

# -require-no-doubles is the correctness gate. Defaulter detection is
# asserted via misbehaving_deferred below rather than -require-defaulters:
# under injected response loss a well-behaved client can stall through a
# retry-backoff streak long enough to be idle-deferred, and that false
# positive is availability noise, not a replication bug.
"$bin/leaseload" -addr "http://$PA" -duration "$DURATION" -beat 5ms \
    -mix normal=2,lhb=2,lub=1,fab=1 -retries 6 -seed 11 \
    -faults "client.drop=0.05" -require-no-doubles \
    > "$ARTIFACTS/load_1.json"

lost=$(json_int "$ARTIFACTS/load_1.json" lost_responses)
[ "${lost:-0}" -gt 0 ] || fail "no responses dropped; fault injection ineffective"
det=$(json_int "$ARTIFACTS/load_1.json" misbehaving_deferred)
[ "${det:-0}" -gt 0 ] || fail "no misbehaving client deferred in phase 1"

wait_synced "$PB"
wait_synced "$PC"
curl -sf "http://$PA/metrics" > "$ARTIFACTS/metrics_pre1.json"
grep -q '"deferrals": [1-9]' "$ARTIFACTS/metrics_pre1.json" \
    || fail "no deferrals before the failover; nothing to preserve"

### Phase 2: kill the leader, promote B, rejoin A fenced.
echo "== phase 2: failover #1 (SIGKILL A, promote B) =="
kill -9 "$pidA"
wait "$pidA" 2>/dev/null || true
pidA=""

"$bin/leased" -promote "http://$PB" > "$ARTIFACTS/promote_b.json"
grep -q '"promoted":true' "$ARTIFACTS/promote_b.json" || fail "B did not promote: $(cat "$ARTIFACTS/promote_b.json")"

# Re-point C at the new leader, and bring the dead ex-primary back as a
# follower of B. A's data directory still holds its band-0 journal; adopting
# B's snapshot retires it under B's epoch band.
kill -9 "$pidC"
wait "$pidC" 2>/dev/null || true
start_node pidC "$ARTIFACTS/leased_c2.log" "$PC" "$bin/dataC" \
    -role follower -repl-addr "$RC" -primary "$RB" -advertise "http://$PC"
start_node pidA "$ARTIFACTS/leased_a2.log" "$PA" "$bin/dataA" \
    -role follower -primary "$RB" -advertise "http://$PA"
wait_synced "$PA"
wait_synced "$PC"

# Fence check: the rejoined ex-primary refuses writes and names the leader.
code=$(curl -s -o "$ARTIFACTS/fence_body.json" -D "$ARTIFACTS/fence_headers.txt" \
    -w '%{http_code}' -X POST "http://$PA/v1/leases" \
    -H 'Content-Type: application/json' \
    -d '{"client":"fence-probe","kind":"wakelock"}')
[ "$code" = "421" ] || fail "rejoined ex-primary answered $code to a write, want 421"
grep -qi "^Leader: *http://$PB" "$ARTIFACTS/fence_headers.txt" \
    || fail "421 from the fenced node carried no Leader hint to B"

# Phase-2 load aimed at the FENCED node: every client must follow the 421
# Leader hint to B. Same loss + retries; still zero double-applies. The
# -prefix gives this phase its own client population — phase-1 clients'
# leases live on (replicated into B) and would otherwise collide.
"$bin/leaseload" -addr "http://$PA" -duration "$DURATION" -beat 5ms \
    -mix normal=2,lhb=2,lub=1,fab=1 -retries 6 -seed 13 -prefix p2- \
    -faults "client.drop=0.05" -require-no-doubles \
    > "$ARTIFACTS/load_2.json"
redirects=$(json_int "$ARTIFACTS/load_2.json" redirects)
[ "${redirects:-0}" -gt 0 ] || fail "no client followed the Leader hint (redirects=0)"
det=$(json_int "$ARTIFACTS/load_2.json" misbehaving_deferred)
[ "${det:-0}" -gt 0 ] || fail "no misbehaving client deferred after the failover"
echo "phase 2: $redirects clients redirected to the new leader, 0 doubles"

wait_synced "$PA"
wait_synced "$PC"
curl -sf "http://$PB/metrics" > "$ARTIFACTS/metrics_pre2.json"
"$bin/chaosverify" -pre "$ARTIFACTS/metrics_pre1.json" \
    -post "$ARTIFACTS/metrics_pre2.json" -shards "$SHARDS" \
    -require-role primary -require-epoch-bump

### Phase 3: kill the new leader too; C must carry the full history.
echo "== phase 3: failover #2 (SIGKILL B, promote C) =="
kill -9 "$pidB"
wait "$pidB" 2>/dev/null || true
pidB=""

curl -sf -X POST "http://$PC/v1/promote" > "$ARTIFACTS/promote_c.json"
grep -q '"promoted":true' "$ARTIFACTS/promote_c.json" || fail "C did not promote: $(cat "$ARTIFACTS/promote_c.json")"
# Let the promoted clock run before snapshotting: time-driven counters
# (term checks) are recomputed on the local timeline, and a follower's
# timeline excises the seconds the dead leader ran after its last
# replicated record — C overtakes B's final figures within a few terms.
sleep 3
curl -sf "http://$PC/metrics" > "$ARTIFACTS/metrics_post.json"

"$bin/chaosverify" -pre "$ARTIFACTS/metrics_pre2.json" \
    -post "$ARTIFACTS/metrics_post.json" -shards "$SHARDS" \
    -require-role primary -require-epoch-bump
# The full chain: everything the original primary decided survived BOTH
# leadership changes.
"$bin/chaosverify" -pre "$ARTIFACTS/metrics_pre1.json" \
    -post "$ARTIFACTS/metrics_post.json" -shards "$SHARDS" \
    -require-role primary -require-epoch-bump

# And the promoted node is open for business.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$PC/v1/leases" \
    -H 'Content-Type: application/json' \
    -d '{"client":"post-failover-probe","kind":"wakelock"}')
[ "$code" = "200" ] || fail "promoted C answered $code to a write, want 200"

echo "chaos_cluster: OK (2 failovers, $SHARDS shards, artifacts in $ARTIFACTS/)"
