#!/usr/bin/env bash
# bench.sh — run the kernel, app-framework, and end-to-end benchmarks and
# emit a machine-readable BENCH_<n>.json so the perf trajectory is tracked
# across PRs. Each record carries name, ns/op, and allocs/op; the zero-alloc
# acceptance criteria (simclock since PR 2, appfw since PR 3) are checked
# against allocs_op == 0.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME      iterations per micro-bench   (default 1000x)
#   E2E_BENCHTIME  iterations per e2e bench     (default 5x)
set -euo pipefail

OUT="${1:-BENCH_9.json}"
BENCHTIME="${BENCHTIME:-1000x}"
E2E_BENCHTIME="${E2E_BENCHTIME:-5x}"
FLEET_BENCHTIME="${FLEET_BENCHTIME:-2000x}"

cd "$(dirname "$0")/.."

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Micro-benches: the simulation kernel (simclock, power) and the app
# framework hot path (appfw).
go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" \
	./internal/simclock ./internal/power ./internal/android/appfw | tee -a "$tmp"

# Daemon serving path: the sharded apply loop at 1/2/4/8 shards, and the
# batch apply loop at several group sizes (its ns/op is per op, so the two
# are directly comparable). Scaling only shows on a multi-core runner; the
# sub-bench names carry the shard count so the trajectory is comparable
# across PRs either way. ReplicatedApply is the same apply loop with a
# replication stream attached (the zero-alloc pin with the cluster layer in
# the path); ReplicationStream pushes records through a real TCP follower
# and reports frames/s plus the publish-end backlog as lag_records.
go test -run '^$' -bench '^(BenchmarkShardedApply|BenchmarkBatchApply|BenchmarkReplicatedApply|BenchmarkReplicationStream)$' \
	-benchmem -benchtime "$BENCHTIME" ./internal/leased | tee -a "$tmp"

# End-to-end: the three experiment regenerations the perf work is judged on.
go test -run '^$' -bench '^(BenchmarkBatteryLife|BenchmarkFigure12|BenchmarkTable5)$' \
	-benchmem -benchtime "$E2E_BENCHTIME" . | tee -a "$tmp"

# Fleet throughput: ns/op is the marginal simulated device; the devices/sec
# extra metric is the headline single-box sweep rate. benchtime is the
# population size (one fleet of N devices per run).
go test -run '^$' -bench '^BenchmarkFleetDevice$' \
	-benchmem -benchtime "$FLEET_BENCHTIME" . | tee -a "$tmp"

# A `go test -benchmem` row reads
#   BenchmarkName-8   N   123.4 ns/op  [extra unit pairs]  0 B/op  0 allocs/op
# so scan value/unit pairs rather than fixed columns.
awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; allocs = "0"; dps = ""; fps = ""; lag = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "allocs/op") allocs = $i
		if ($(i + 1) == "devices/sec") dps = $i
		if ($(i + 1) == "frames/s") fps = $i
		if ($(i + 1) == "lag_records") lag = $i
	}
	if (ns == "") next
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"ns_op\": %s, \"allocs_op\": %s", name, ns, allocs
	if (dps != "") printf ", \"devices_sec\": %s", dps
	if (fps != "") printf ", \"frames_sec\": %s", fps
	if (lag != "") printf ", \"lag_records\": %s", lag
	printf "}"
}
BEGIN { print "[" }
END { print "\n]" }
' "$tmp" > "$OUT"

echo "wrote $(grep -c '"name"' "$OUT") benchmark records to $OUT"
