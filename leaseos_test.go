package leaseos_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	leaseos "repro"
)

func TestFacadeEndToEnd(t *testing.T) {
	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})
	s.Apps.NewProcess(100, "app")
	wl := s.Power.NewWakelock(100, leaseos.Wakelock, "x")
	wl.Acquire()
	s.Run(time.Minute)
	if s.Leases.LeaseCount() != 1 {
		t.Fatalf("leases = %d", s.Leases.LeaseCount())
	}
	l := s.Leases.Leases()[0]
	if l.Kind() != leaseos.Wakelock {
		t.Fatalf("kind = %v", l.Kind())
	}
	if got := l.History()[0].Behavior; got != leaseos.LHB {
		t.Fatalf("behavior = %v, want LHB", got)
	}
}

func TestFacadeConstantsRoundTrip(t *testing.T) {
	for _, p := range []leaseos.Policy{
		leaseos.Vanilla, leaseos.LeaseOS, leaseos.DozeDefault,
		leaseos.DozeAggressive, leaseos.DefDroid, leaseos.Throttle,
	} {
		got, err := leaseos.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v %v", p, got, err)
		}
	}
}

func TestFacadeTable5AppsComplete(t *testing.T) {
	specs := leaseos.Table5Apps()
	if len(specs) != 20 {
		t.Fatalf("Table5Apps = %d rows, want 20", len(specs))
	}
	for _, sp := range specs {
		if sp.New == nil || sp.Trigger == nil || sp.Name == "" {
			t.Fatalf("incomplete spec %+v", sp)
		}
	}
}

func TestFacadeExperimentsListed(t *testing.T) {
	exps := leaseos.Experiments(true)
	if len(exps) != 21 {
		t.Fatalf("experiments = %d, want 21", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e.ID)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table-5", "figure-9", "figure-12", "battery-life"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestFacadeDeviceProfiles(t *testing.T) {
	for _, p := range []leaseos.DeviceProfile{
		leaseos.PixelXL, leaseos.Nexus6, leaseos.Nexus4,
		leaseos.GalaxyS4, leaseos.MotoG, leaseos.Nexus5X,
	} {
		if p.Name == "" || p.CapacityWh() <= 0 {
			t.Fatalf("bad profile %+v", p)
		}
	}
	if leaseos.PixelXL.WithDVFS(0.3).DVFSAlpha != 0.3 {
		t.Fatal("WithDVFS lost the alpha")
	}
}

// TestFacadeRunExperimentsParallel drives the parallel harness through the
// public facade: a small selection of experiments runs at two worker
// counts and must render identically, in the requested order.
func TestFacadeRunExperimentsParallel(t *testing.T) {
	defer leaseos.WithParallelism(0)
	var selected []leaseos.Experiment
	for _, e := range leaseos.Experiments(true) {
		switch e.ID {
		case "table-1", "figure-5", "figure-9":
			selected = append(selected, e)
		}
	}
	if len(selected) != 3 {
		t.Fatalf("selected %d experiments, want 3", len(selected))
	}
	render := func(n int) string {
		leaseos.WithParallelism(n)
		var b strings.Builder
		results := leaseos.RunExperiments(selected)
		for i, r := range results {
			if r.ID != selected[i].ID {
				t.Fatalf("result %d = %s, want %s (input order must be preserved)", i, r.ID, selected[i].ID)
			}
			b.WriteString(r.String())
		}
		return b.String()
	}
	if seq, par := render(1), render(4); seq != par {
		t.Fatalf("facade output differs between 1 and 4 workers:\n%s\n---\n%s", seq, par)
	}
}

func TestDefaultLeaseConfigMatchesPaper(t *testing.T) {
	cfg := leaseos.DefaultLeaseConfig()
	if cfg.Term != 5*time.Second || cfg.Tau != 25*time.Second {
		t.Fatalf("defaults = term %v τ %v, want the paper's 5 s / 25 s", cfg.Term, cfg.Tau)
	}
}

// Example demonstrates the headline quickstart flow.
func Example() {
	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})
	s.Apps.NewProcess(100, "leaky-app")
	wl := s.Power.NewWakelock(100, leaseos.Wakelock, "forgotten")
	wl.Acquire()
	s.Run(30 * time.Minute)
	fmt.Printf("state: %v\n", s.Leases.Leases()[0].State())
	// Output: state: DEFERRED
}
