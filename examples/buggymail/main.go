// Buggymail walks through the paper's K-9 Mail case study (§2.1 case I,
// Figure 8): a push service that loops over network requests under a held
// wakelock and, when the network disconnects, spins in its exception
// handler indefinitely.
//
// The example reproduces the three phases of the paper's narrative:
//
//  1. healthy server — the lease renews quietly and nothing is penalised;
//  2. network gone — the Low-Utility behaviour appears and LeaseOS defers
//     the lease, pausing the useless retry loop;
//  3. network back — the loop completes, the app returns to normal, and
//     the lease recovers on its own ("the lease mechanism can adapt to
//     temporary energy misbehavior").
package main

import (
	"fmt"
	"time"

	leaseos "repro"
	"repro/internal/apps"
)

func main() {
	s := leaseos.New(leaseos.Options{
		Policy: leaseos.LeaseOS,
		Lease:  leaseos.LeaseConfig{RecordTransitions: true},
	})

	const uid leaseos.UID = 100
	k9 := apps.NewK9(s, uid)
	k9.Start()

	report := func(phase string) {
		fmt.Printf("%-28s t=%-8v energy=%6.1f J  exceptions=%-5d",
			phase, s.Now().Truncate(time.Second), s.Meter.EnergyOfJ(uid), s.Apps.ExceptionsOf(uid))
		for _, l := range s.Leases.Leases() {
			fmt.Printf("  lease(%v)=%v", l.Kind(), l.State())
		}
		fmt.Println()
	}

	// Phase 1: everything healthy for 10 minutes.
	s.Run(10 * time.Minute)
	report("healthy server")

	// Phase 2: the network disconnects; the buggy handler retries without
	// back-off, throwing an exception per attempt.
	s.World.SetNetwork(false, false)
	s.Run(10 * time.Minute)
	report("disconnected (bug active)")

	// Phase 3: connectivity returns; the lease recovers by itself.
	s.World.SetNetwork(true, true)
	s.Run(10 * time.Minute)
	report("reconnected")

	fmt.Println("\nlease transitions observed:")
	for _, tr := range s.Leases.Transitions {
		fmt.Printf("  %8v  %v -> %v  (%s)\n", tr.At.Truncate(time.Second), tr.From, tr.To, tr.Reason)
	}
}
