// Policycompare runs one buggy app and one legitimate app under every
// policy, reproducing the paper's core argument: blind throttling either
// under-reacts to misbehaviour or breaks legitimate heavy resource use,
// while the utilitarian lease does neither.
//
// The buggy app is BetterWeather searching for GPS inside a building (the
// Figure 1 condition); the legitimate app is a RunKeeper-style fitness
// tracker recording a run outdoors. Each app gets its own device so the
// power attribution stays clean.
package main

import (
	"fmt"
	"time"

	leaseos "repro"
	"repro/internal/apps"
	"repro/internal/env"
)

const runFor = 30 * time.Minute

// buggyRun measures BetterWeather's power draw under weak GPS signal.
func buggyRun(policy leaseos.Policy) float64 {
	s := leaseos.New(leaseos.Options{Policy: policy, ThrottleTerm: time.Minute})
	s.World.SetGPS(env.GPSWeak)
	app := apps.NewBetterWeather(s, 100)
	app.Start()
	s.Run(runFor)
	return s.Meter.EnergyOfJ(100) / runFor.Seconds() * 1000
}

// trackerRun measures a fitness tracker's power and how many track points
// survive the policy.
func trackerRun(policy leaseos.Policy) (float64, int) {
	s := leaseos.New(leaseos.Options{Policy: policy, ThrottleTerm: time.Minute})
	s.World.SetMotion(true, 2.5)
	app := apps.NewRunKeeper(s, 100)
	app.Start()
	s.Run(runFor)
	return s.Meter.EnergyOfJ(100) / runFor.Seconds() * 1000, app.TrackPoints
}

func main() {
	fmt.Printf("%-16s | %16s | %14s %13s\n",
		"policy", "BetterWeather mW", "RunKeeper mW", "track points")

	for _, policy := range []leaseos.Policy{
		leaseos.Vanilla, leaseos.LeaseOS, leaseos.DozeAggressive,
		leaseos.DefDroid, leaseos.Throttle,
	} {
		buggyMW := buggyRun(policy)
		goodMW, points := trackerRun(policy)
		fmt.Printf("%-16s | %16.1f | %14.1f %13d\n", policy, buggyMW, goodMW, points)
	}

	fmt.Println("\nreading the table: LeaseOS cuts the buggy widget's draw the most")
	fmt.Println("while the tracker keeps every point (~890). Doze saves energy by")
	fmt.Println("freezing both apps; the single-term throttler is worst of both")
	fmt.Println("worlds — the widget's 40 s ask cycle slips under its 60 s term")
	fmt.Println("(no savings at all) while the steady legitimate tracker gets cut.")
}
