// Quickstart: build a simulated phone, leak a wakelock the way the Torch
// app does, and watch LeaseOS detect the Long-Holding behaviour, defer the
// lease, and collapse the wasted energy.
package main

import (
	"fmt"
	"time"

	leaseos "repro"
)

func main() {
	run := func(policy leaseos.Policy) float64 {
		s := leaseos.New(leaseos.Options{Policy: policy})

		// An app (uid 100) acquires a wakelock and forgets it — the classic
		// no-sleep energy bug.
		const appUID leaseos.UID = 100
		s.Apps.NewProcess(appUID, "leaky-app")
		wl := s.Power.NewWakelock(appUID, leaseos.Wakelock, "forgotten")
		wl.Acquire()

		s.Run(30 * time.Minute)

		if policy == leaseos.LeaseOS {
			for _, l := range s.Leases.Leases() {
				last := l.History()[len(l.History())-1]
				fmt.Printf("  lease %d (%v): state %v, last term classified %v "+
					"(utilization %.2f, utility %.0f)\n",
					l.ID(), l.Kind(), l.State(), last.Behavior,
					last.Utilization, last.UtilityScore)
			}
		}
		return s.Meter.EnergyOfJ(appUID)
	}

	fmt.Println("leaking a wakelock for 30 minutes on a", leaseos.PixelXL.Name)

	fmt.Println("\nvanilla resource management:")
	vanilla := run(leaseos.Vanilla)
	fmt.Printf("  app drained %.1f J\n", vanilla)

	fmt.Println("\nlease-based, utilitarian resource management:")
	withLease := run(leaseos.LeaseOS)
	fmt.Printf("  app drained %.1f J\n", withLease)

	fmt.Printf("\nwasted energy reduced by %.1f%% (paper Table 5: ~98%% for Torch)\n",
		100*(1-withLease/vanilla))
}
