// Extensions demonstrates the three §8 future-work directions this
// reproduction implements beyond the paper's published system:
//
//  1. reputation — per-app history that follows a defect across fresh
//     kernel objects, so a leak that mints a new wakelock per cycle cannot
//     keep resetting its penalty;
//  2. DVFS-aware energy accounting — concurrent CPU load raises the
//     operating point, so each running work item draws superlinearly;
//  3. Excessive-Use observability — EUB is never penalised (the paper's
//     §4 non-goal stands) but is surfaced per app for a user-facing layer.
package main

import (
	"fmt"
	"time"

	leaseos "repro"
	"repro/internal/android/hooks"
)

func reputationDemo() {
	fmt.Println("1. reputation: a fresh-object leaker, 12 cycles of 2 minutes")
	run := func(enable bool) float64 {
		cfg := leaseos.DefaultLeaseConfig()
		cfg.EnableReputation = enable
		s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS, Lease: cfg})
		s.Apps.NewProcess(100, "leaker")
		for i := 0; i < 12; i++ {
			wl := s.Power.NewWakelock(100, leaseos.Wakelock, "cycle")
			wl.Acquire()
			s.Run(2 * time.Minute)
			wl.Destroy() // a fresh kernel object next cycle: new lease
		}
		return s.Meter.EnergyOfJ(100)
	}
	off := run(false)
	on := run(true)
	fmt.Printf("   reputation off: %5.2f J   on: %5.2f J   (extra %.0f%% saved)\n\n",
		off, on, 100*(1-on/off))
}

func dvfsDemo() {
	fmt.Println("2. DVFS-aware accounting: two apps grinding concurrently for 1 minute")
	run := func(alpha float64) float64 {
		s := leaseos.New(leaseos.Options{
			Policy: leaseos.Vanilla,
			Device: leaseos.PixelXL.WithDVFS(alpha),
		})
		for uid := leaseos.UID(100); uid <= 101; uid++ {
			p := s.Apps.NewProcess(uid, fmt.Sprintf("grinder-%d", uid))
			wl := s.Power.NewWakelock(uid, leaseos.Wakelock, "grind")
			wl.Acquire()
			p.RunWork(time.Minute, nil)
		}
		s.Run(time.Minute)
		return s.Meter.EnergyJ()
	}
	flat := run(0)
	dvfs := run(0.3)
	fmt.Printf("   frequency-flat: %5.1f J   DVFS α=0.3: %5.1f J (+%.0f%%)\n\n",
		flat, dvfs, 100*(dvfs/flat-1))
}

func eubDemo() {
	fmt.Println("3. EUB observability: a heavy game under LeaseOS for 10 minutes")
	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})
	p := s.Apps.NewProcess(100, "game")
	wl := s.Power.NewWakelock(100, hooks.Wakelock, "game-loop")
	wl.Acquire()
	stop := p.Every(time.Second, func() {
		p.RunWork(900*time.Millisecond, func() { p.NoteUIUpdate() })
		p.NoteInteraction()
	})
	defer stop()
	s.Run(10 * time.Minute)
	l := s.Leases.Leases()[0]
	fmt.Printf("   lease state: %v (never deferred — EUB is a non-goal)\n", l.State())
	fmt.Printf("   EUB time observed for the app: %v of 10m\n",
		s.Leases.EUBTimeOf(100).Truncate(time.Second))
	fmt.Printf("   reputation: %+v\n", s.Leases.ReputationOf(100))
}

func main() {
	reputationDemo()
	dvfsDemo()
	eubDemo()
}
