// Customutility reproduces the paper's Figure 6: the TapAndTurn screen-
// rotation helper registers a custom utility counter (clicks over icon
// occurrences) so the lease manager can judge its orientation-sensor stream
// by what the user actually does with it.
package main

import (
	"fmt"
	"time"

	leaseos "repro"
	"repro/internal/apps"
)

func run(withCounter bool, clicky bool) {
	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})

	const uid leaseos.UID = 100
	app := apps.NewTapAndTurn(s, uid)
	app.Start()

	if withCounter {
		// The Figure 6 ClickUtility: 100 × clicks / icon occurrences.
		s.Leases.SetUtility(uid, leaseos.SensorListener, app.ClickUtility())
	}

	// The device rotates now and then while the user reads; the icon
	// appears each time. A "clicky" user actually uses it.
	stop := s.Engine.Ticker(20*time.Second, func() {
		app.RecordRotation(clicky)
	})
	defer stop()

	s.Run(30 * time.Minute)

	energy := s.Meter.EnergyOfJ(uid)
	var lastScore float64
	deferred := 0
	for _, l := range s.Leases.Leases() {
		for _, rec := range l.History() {
			lastScore = rec.UtilityScore
			if rec.Behavior == leaseos.LUB {
				deferred++
			}
		}
	}
	fmt.Printf("  custom counter %-5v | user clicks %-5v | energy %5.2f J | "+
		"last utility %3.0f | LUB terms %d\n",
		withCounter, clicky, energy, lastScore, deferred)
}

func main() {
	fmt.Println("TapAndTurn's orientation sensor under LeaseOS, 30-minute runs")
	fmt.Println()
	fmt.Println("generic utility only:")
	run(false, false)
	fmt.Println("with the Figure 6 ClickUtility counter:")
	run(true, false) // icon shown, never clicked → utility collapses
	run(true, true)  // user actually uses the feature → leases renew
}
