// Package leaseos is a Go reproduction of "A Case for Lease-Based,
// Utilitarian Resource Management on Mobile Devices" (Hu, Liu, Huang —
// ASPLOS 2019).
//
// The paper implements LeaseOS inside Android; this library reproduces the
// whole system in a deterministic discrete-event simulator: the Android
// system services that own energy-relevant resources (wakelocks, screen,
// Wi-Fi locks, GPS and sensor listeners, audio sessions), an app framework
// with CPU-sleep-gated execution, per-app energy accounting, models of the
// 20 buggy apps the paper evaluates, the baseline policies (Doze, DefDroid,
// single-term throttling) — and, at the centre, the lease-based utilitarian
// resource manager itself.
//
// # Quick start
//
//	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})
//	wl := s.Power.NewWakelock(100, leaseos.Wakelock, "my-lock")
//	wl.Acquire()            // a lease is created behind the scenes
//	s.Run(30 * time.Minute) // idle holding is detected as LHB and deferred
//	fmt.Println(s.Meter.EnergyOfJ(100), "J wasted")
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-versus-measured record
// of every table and figure.
package leaseos

import (
	"repro/internal/android/hooks"
	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/exp"
	"repro/internal/lease"
	"repro/internal/power"
	"repro/internal/sim"
)

// Simulation assembly.
type (
	// Sim is a fully-assembled simulated device; see sim.Sim.
	Sim = sim.Sim
	// Options configures New.
	Options = sim.Options
	// Policy selects the resource-management mechanism.
	Policy = sim.Policy
)

// The available policies.
const (
	// Vanilla grants resources until released, like stock mobile OSes.
	Vanilla = sim.Vanilla
	// LeaseOS is the paper's contribution.
	LeaseOS = sim.LeaseOS
	// DozeDefault and DozeAggressive are Android Doze variants.
	DozeDefault    = sim.DozeDefault
	DozeAggressive = sim.DozeAggressive
	// DefDroid is fine-grained threshold throttling.
	DefDroid = sim.DefDroid
	// Throttle is a pure time-based, single-term throttler.
	Throttle = sim.Throttle
)

// New assembles a simulated device under the chosen policy.
func New(opts Options) *Sim { return sim.New(opts) }

// ParsePolicy resolves a policy name ("vanilla", "leaseos", "doze",
// "doze-aggressive", "defdroid", "throttle").
func ParsePolicy(s string) (Policy, error) { return sim.ParsePolicy(s) }

// Lease mechanism.
type (
	// LeaseConfig is the lease policy (terms, τ, thresholds); zero fields
	// take the paper's defaults (5 s term, 25 s deferral).
	LeaseConfig = lease.Config
	// LeaseManager is the lease manager service.
	LeaseManager = lease.Manager
	// LeaseState is a lease's lifecycle state (Figure 5).
	LeaseState = lease.State
	// Behavior classifies one term of resource usage (Table 1).
	Behavior = lease.Behavior
	// TermRecord is the per-term lease stat.
	TermRecord = lease.TermRecord
	// UtilityCounter is the optional app-supplied custom utility callback.
	UtilityCounter = lease.UtilityCounter
	// UtilityFunc adapts a function to a UtilityCounter.
	UtilityFunc = lease.UtilityFunc
)

// Lease states and behaviour classes.
const (
	Active   = lease.Active
	Inactive = lease.Inactive
	Deferred = lease.Deferred
	Dead     = lease.Dead

	Normal = lease.Normal
	FAB    = lease.FAB
	LHB    = lease.LHB
	LUB    = lease.LUB
	EUB    = lease.EUB
)

// DefaultLeaseConfig returns the paper's default lease policy.
func DefaultLeaseConfig() LeaseConfig { return lease.DefaultConfig() }

// Resources.
type (
	// ResourceKind identifies a constrained resource type.
	ResourceKind = hooks.Kind
	// UID identifies an app for power attribution.
	UID = power.UID
)

// The resource kinds of paper Table 1.
const (
	Wakelock       = hooks.Wakelock
	ScreenWakelock = hooks.ScreenWakelock
	WifiLock       = hooks.WifiLock
	GPSListener    = hooks.GPSListener
	SensorListener = hooks.SensorListener
	AudioSession   = hooks.AudioSession
)

// Devices.
type DeviceProfile = device.Profile

// The evaluated phone profiles.
var (
	PixelXL  = device.PixelXL
	Nexus6   = device.Nexus6
	Nexus4   = device.Nexus4
	GalaxyS4 = device.GalaxyS4
	MotoG    = device.MotoG
	Nexus5X  = device.Nexus5X
)

// App models.
type (
	// App is a runnable application model.
	App = apps.App
	// AppSpec is one Table 5 row: app, defect, trigger, constructor.
	AppSpec = apps.Spec
)

// Table5Apps returns the 20 buggy-app specifications of paper Table 5.
func Table5Apps() []AppSpec { return apps.Table5Specs() }

// Experiments.
type (
	// ExperimentResult is one regenerated table or figure.
	ExperimentResult = exp.Result
	// Experiment is a named, runnable artefact.
	Experiment = exp.Runner
)

// Experiments lists every regenerable table and figure in paper order.
// Quick mode shrinks the randomised sweeps.
func Experiments(quick bool) []Experiment { return exp.Runners(quick) }

// WithParallelism sets how many workers the experiment harness uses to fan
// independent simulations out across CPUs. n ≤ 0 restores the default
// (GOMAXPROCS); n = 1 selects the sequential reference path. Parallelism
// lives strictly across whole simulations — the event queue inside one Sim
// stays single-threaded — so rendered experiment output is byte-identical
// at any worker count.
func WithParallelism(n int) { exp.SetParallelism(n) }

// RunExperiments executes the given experiments and returns their results
// in the same order, fanning independent simulations out across the
// harness worker pool (see WithParallelism). Wall-clock micro benchmarks
// (Table 4) always run in isolation after the parallel batch drains.
func RunExperiments(es []Experiment) []ExperimentResult { return exp.RunSelected(es) }
