// Benchmarks: one target per paper table and figure (regenerating the
// artefact end to end), true micro benchmarks for the Table 4 lease
// operations, and ablation benches for the design choices DESIGN.md calls
// out. Custom metrics report the reproduced statistic alongside ns/op.
package leaseos_test

import (
	"testing"
	"time"

	leaseos "repro"
	"repro/internal/android/hooks"
	"repro/internal/apps"
	"repro/internal/exp"
	"repro/internal/lease"
	"repro/internal/sim"
)

// runExperiment benches one artefact regeneration.
func runExperiment(b *testing.B, fn func() exp.Result) {
	b.Helper()
	var lines int
	for i := 0; i < b.N; i++ {
		r := fn()
		lines = len(r.Lines)
	}
	b.ReportMetric(float64(lines), "lines")
}

func BenchmarkFigure1(b *testing.B)  { runExperiment(b, exp.Figure1) }
func BenchmarkFigure2(b *testing.B)  { runExperiment(b, exp.Figure2) }
func BenchmarkFigure3(b *testing.B)  { runExperiment(b, exp.Figure3) }
func BenchmarkFigure4(b *testing.B)  { runExperiment(b, exp.Figure4) }
func BenchmarkTable1(b *testing.B)   { runExperiment(b, exp.Table1) }
func BenchmarkTable2(b *testing.B)   { runExperiment(b, exp.Table2) }
func BenchmarkFigure5(b *testing.B)  { runExperiment(b, exp.Figure5) }
func BenchmarkFigure9(b *testing.B)  { runExperiment(b, exp.Figure9) }
func BenchmarkTable4(b *testing.B)   { runExperiment(b, exp.Table4) }
func BenchmarkFigure11(b *testing.B) { runExperiment(b, exp.Figure11) }
func BenchmarkTable5(b *testing.B)   { runExperiment(b, exp.Table5) }
func BenchmarkUsability(b *testing.B) {
	runExperiment(b, exp.Usability)
}
func BenchmarkFigure12(b *testing.B) {
	runExperiment(b, func() exp.Result { return exp.Figure12(3) })
}
func BenchmarkFigure13(b *testing.B) {
	runExperiment(b, func() exp.Result { return exp.Figure13(2) })
}
func BenchmarkFigure14(b *testing.B) { runExperiment(b, exp.Figure14) }
func BenchmarkBatteryLife(b *testing.B) {
	runExperiment(b, exp.BatteryLife)
}

// --- Table 4 micro benchmarks: the real cost of each lease operation ---

func BenchmarkLeaseCreate(b *testing.B) {
	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Leases.Create(hooks.Object{ID: uint64(1000 + i), UID: 100, Kind: hooks.Wakelock, Control: s.Power})
	}
}

func BenchmarkLeaseCheckAccept(b *testing.B) {
	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})
	wl := s.Power.NewWakelock(100, hooks.Wakelock, "bench")
	wl.Acquire()
	id := s.Leases.Leases()[0].ID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Leases.Check(id)
	}
}

func BenchmarkLeaseCheckReject(b *testing.B) {
	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Leases.Check(0xdeadbeef)
	}
}

func BenchmarkLeaseUpdate(b *testing.B) {
	s := leaseos.New(leaseos.Options{Policy: leaseos.LeaseOS})
	wl := s.Power.NewWakelock(100, hooks.Wakelock, "bench")
	wl.Acquire()
	id := s.Leases.Leases()[0].ID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Leases.ForceTermCheck(id)
	}
}

// --- harness fan-out: the sequential/parallel pair for the worker pool ---
//
// The same artefact regenerated at parallelism 1 (the reference path) and
// at GOMAXPROCS. On a 4+ core machine the parallel variant should be ≥ 2×
// faster in wall-clock ns/op while producing byte-identical output (see
// TestAllParallelDeterminism in internal/exp).

func benchParallelism(b *testing.B, workers int, fn func() exp.Result) {
	b.Helper()
	exp.SetParallelism(workers)
	defer exp.SetParallelism(0)
	runExperiment(b, fn)
}

func BenchmarkTable5Sequential(b *testing.B) { benchParallelism(b, 1, exp.Table5) }
func BenchmarkTable5Parallel(b *testing.B)   { benchParallelism(b, 0, exp.Table5) }

func BenchmarkFigure13Sequential(b *testing.B) {
	benchParallelism(b, 1, func() exp.Result { return exp.Figure13(4) })
}
func BenchmarkFigure13Parallel(b *testing.B) {
	benchParallelism(b, 0, func() exp.Result { return exp.Figure13(4) })
}

// BenchmarkEngineThroughput measures raw event-kernel throughput, the floor
// for every simulation in this repository.
func BenchmarkEngineThroughput(b *testing.B) {
	s := leaseos.New(leaseos.Options{})
	n := 0
	stop := s.Engine.Ticker(time.Millisecond, func() { n++ })
	defer stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(time.Millisecond)
	}
}

// --- ablation benches: the design choices DESIGN.md calls out ---

// torchReduction measures the Torch-leak energy reduction under a given
// lease config, reported as a custom metric.
func torchReduction(b *testing.B, cfg lease.Config) {
	b.Helper()
	reduction := 0.0
	for i := 0; i < b.N; i++ {
		run := func(pol sim.Policy) float64 {
			s := sim.New(sim.Options{Policy: pol, Lease: cfg})
			app := apps.NewTorch(s, 100)
			app.Start()
			s.Run(30 * time.Minute)
			return s.Meter.EnergyOfJ(100)
		}
		base := run(sim.Vanilla)
		withLease := run(sim.LeaseOS)
		reduction = 100 * (1 - withLease/base)
	}
	b.ReportMetric(reduction, "reduction%")
}

// BenchmarkAblationTauEscalation quantifies repeat-offender τ escalation:
// with it the steady leak collapses to ~98% reduction; without it the
// reduction caps near 1/(1+λ) ≈ 83%.
func BenchmarkAblationTauEscalation(b *testing.B) {
	b.Run("escalation-on", func(b *testing.B) { torchReduction(b, lease.Config{}) })
	b.Run("escalation-off", func(b *testing.B) { torchReduction(b, lease.Config{NoTauEscalation: true}) })
}

// BenchmarkAblationAdaptiveTerms quantifies the §5.2 common-case
// optimisation: adaptive terms cut the number of term checks (accounting
// work) for a well-behaved app by an order of magnitude.
func BenchmarkAblationAdaptiveTerms(b *testing.B) {
	run := func(b *testing.B, cfg lease.Config) {
		checks := 0
		for i := 0; i < b.N; i++ {
			s := sim.New(sim.Options{Policy: sim.LeaseOS, Lease: cfg})
			app := apps.NewSpotify(s, 100)
			app.Start()
			s.Run(30 * time.Minute)
			checks = s.Leases.TermChecks
		}
		b.ReportMetric(float64(checks), "term-checks")
	}
	b.Run("adaptive-on", func(b *testing.B) { run(b, lease.Config{}) })
	b.Run("adaptive-off", func(b *testing.B) { run(b, lease.Config{NoAdaptiveTerms: true}) })
}

// BenchmarkAblationUtilityVsHoldingTime contrasts the utilitarian
// classifier with pure holding-time throttling on a legitimate tracker:
// the former preserves all track points, the latter destroys them.
func BenchmarkAblationUtilityVsHoldingTime(b *testing.B) {
	run := func(b *testing.B, pol sim.Policy) {
		points := 0
		for i := 0; i < b.N; i++ {
			s := sim.New(sim.Options{Policy: pol, ThrottleTerm: time.Minute})
			s.World.SetMotion(true, 2.5)
			app := apps.NewRunKeeper(s, 100)
			app.Start()
			s.Run(30 * time.Minute)
			points = app.TrackPoints
		}
		b.ReportMetric(float64(points), "track-points")
	}
	b.Run("utility-lease", func(b *testing.B) { run(b, sim.LeaseOS) })
	b.Run("holding-time-throttle", func(b *testing.B) { run(b, sim.Throttle) })
}

// BenchmarkAblationExceptionSignal quantifies the exception-based generic
// utility: without it, the K-9 disconnected loop looks well-utilised and
// escapes classification entirely.
func BenchmarkAblationExceptionSignal(b *testing.B) {
	run := func(b *testing.B, withSignal bool) {
		reduction := 0.0
		for i := 0; i < b.N; i++ {
			energy := func(pol sim.Policy) float64 {
				s := sim.New(sim.Options{Policy: pol,
					Lease: lease.Config{NoExceptionSignal: !withSignal}})
				s.World.SetNetwork(false, false)
				app := apps.NewK9(s, 100)
				app.Start()
				s.Run(30 * time.Minute)
				return s.Meter.EnergyOfJ(100)
			}
			base := energy(sim.Vanilla)
			withLease := energy(sim.LeaseOS)
			reduction = 100 * (1 - withLease/base)
		}
		b.ReportMetric(reduction, "reduction%")
	}
	b.Run("exception-signal-on", func(b *testing.B) { run(b, true) })
	b.Run("exception-signal-off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationReputation quantifies the §8 reputation extension on a
// leak that mints a fresh kernel object per cycle (per-lease escalation
// resets; per-app reputation does not).
func BenchmarkAblationReputation(b *testing.B) {
	run := func(b *testing.B, enable bool) {
		reduction := 0.0
		for i := 0; i < b.N; i++ {
			energy := func(pol sim.Policy) float64 {
				cfg := lease.DefaultConfig()
				cfg.EnableReputation = enable
				s := sim.New(sim.Options{Policy: pol, Lease: cfg})
				s.Apps.NewProcess(100, "leaker")
				for c := 0; c < 12; c++ {
					wl := s.Power.NewWakelock(100, hooks.Wakelock, "cycle")
					wl.Acquire()
					s.Run(2 * time.Minute)
					wl.Destroy()
				}
				return s.Meter.EnergyOfJ(100)
			}
			base := energy(sim.Vanilla)
			withLease := energy(sim.LeaseOS)
			reduction = 100 * (1 - withLease/base)
		}
		b.ReportMetric(reduction, "reduction%")
	}
	b.Run("reputation-on", func(b *testing.B) { run(b, true) })
	b.Run("reputation-off", func(b *testing.B) { run(b, false) })
}

func BenchmarkSection23(b *testing.B) { runExperiment(b, exp.Section23) }

func BenchmarkDetectionLatency(b *testing.B) { runExperiment(b, exp.DetectionLatency) }

func BenchmarkWindowSweep(b *testing.B) { runExperiment(b, exp.WindowSweep) }

func BenchmarkFixedApps(b *testing.B) { runExperiment(b, exp.FixedApps) }

func BenchmarkCrossDevice(b *testing.B) { runExperiment(b, exp.CrossDevice) }

// BenchmarkFleetDevice measures the per-device cost of a population sweep:
// one b.N-device fleet, so ns/op is the marginal device (drawn config +
// pooled world reset + 30 simulated minutes + streamed aggregation) and
// devices/sec is the fleet engine's single-box throughput.
func BenchmarkFleetDevice(b *testing.B) {
	rep := exp.RunFleet(exp.FleetConfig{Devices: b.N, Seed: 1})
	if len(rep.PerPolicy) == 0 {
		b.Fatal("empty fleet report")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "devices/sec")
}
